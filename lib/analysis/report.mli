(** Diagnostics produced by the barrier-safety and race analyses, with
    text and JSON renderings. Messages are built from value hints (not
    SSA ids), so reports are stable across processes and can be pinned
    by golden tests. *)

module Json = Pgpu_trace.Json

type severity = Error | Warning

type diagnostic = {
  severity : severity;
  kind : string;
      (** stable machine-readable tag: ["barrier-divergence"],
          ["shared-race"], ["possible-race"], ["unknown-index"],
          ["dynamic-race"], ["device-error"], ["cpu-fission"] *)
  kernel : string;  (** kernel name, suffixed with the alternative desc if any *)
  message : string;
}

val errors : diagnostic list -> diagnostic list
val has_errors : diagnostic list -> bool
val pp_severity : severity Fmt.t
val pp_diagnostic : diagnostic Fmt.t

(** Deterministic report order: kernel, then severity, then message. *)
val sort : diagnostic list -> diagnostic list

(** One line per diagnostic plus a summary line, in [sort] order. *)
val pp_report : diagnostic list Fmt.t

val to_string : diagnostic list -> string
val json_of_diagnostic : diagnostic -> Json.t

(** [{errors; warnings; diagnostics}] with the list in [sort] order. *)
val to_json : diagnostic list -> Json.t
