(** Thread-index-affine expressions and the integer (in)feasibility
    procedures behind the static race checker.

    Every value the checker can reason about precisely is an affine
    combination over a set of {e symbols}: thread induction variables,
    per-thread-instance loop counters, and opaque-but-uniform
    quantities (kernel parameters, lockstep loop counters, results of
    non-affine uniform arithmetic such as [1 << k]). A symbol carries
    an optional constant interval from a small abstract interpretation
    (loop-bound propagation, monotone shift arithmetic), which feeds
    the solver as weak bounds.

    Race queries become conjunctive systems of affine equalities and
    inequalities over two renamed instances of the thread symbols. The
    decision stack, from cheap to precise:

    - Fourier–Motzkin elimination over the rationals, with integer
      tightening (rows are gcd-normalized with floor division), which
      is a sound infeasibility test over the integers;
    - a modulus-interval test for each equality [E = 0]: for a
      candidate modulus [m] dividing some coefficients, the
      non-divisible residue [S] must be a multiple of [m]; its weak
      interval either contains no multiple (infeasible) or finitely
      many, each of which is re-checked as [S = q*m] — subsuming the
      classical GCD test and deciding tiled-index disjointness such as
      [16*tx + i = 17*i];
    - a congruence rule for modulo guards ([e % m == 0] on both
      instances forces [e1 - e2 ≡ 0 (mod m)]; if the system bounds
      [|e1 - e2| < m], the difference must be exactly 0), which
      decides strided tree reductions like backprop's
      [if (ty % (2*s) == 0)]. *)

type kind =
  | Thread of int  (** thread induction variable, dimension index *)
  | Local  (** per-thread-instance (counter of a barrier-free loop) *)
  | Shared  (** uniform across the threads of a block *)

type sym = {
  sid : int;
  name : string;  (** printing hint, not an identity *)
  kind : kind;
  lo : int option;  (** weak constant bounds, inclusive *)
  hi : int option;
}

(** [const + sum coeff * sym]; terms sorted by [sid], coefficients
    nonzero. *)
type t = { const : int; terms : (sym * int) list }

let const n = { const = n; terms = [] }
let of_sym s = { const = 0; terms = [ (s, 1) ] }
let is_const a = a.terms = []

let rec merge_terms ts1 ts2 =
  match (ts1, ts2) with
  | [], ts | ts, [] -> ts
  | (s1, c1) :: r1, (s2, c2) :: r2 ->
      if s1.sid < s2.sid then (s1, c1) :: merge_terms r1 ts2
      else if s1.sid > s2.sid then (s2, c2) :: merge_terms ts1 r2
      else
        let c = c1 + c2 in
        if c = 0 then merge_terms r1 r2 else (s1, c) :: merge_terms r1 r2

let add a b = { const = a.const + b.const; terms = merge_terms a.terms b.terms }

let scale k a =
  if k = 0 then const 0
  else { const = k * a.const; terms = List.map (fun (s, c) -> (s, k * c)) a.terms }

let neg a = scale (-1) a
let sub a b = add a (neg b)
let add_const n a = { a with const = a.const + n }

(** [a * b] when one side is a constant. *)
let mul a b =
  if is_const a then Some (scale a.const b)
  else if is_const b then Some (scale b.const a)
  else None

let equal a b = a.const = b.const && List.equal (fun (s1, c1) (s2, c2) -> s1.sid = s2.sid && c1 = c2) a.terms b.terms

let syms a = List.map fst a.terms
let is_uniform a = List.for_all (fun (s, _) -> s.kind = Shared) a.terms
let is_thread_dep a = not (is_uniform a)

(** Mentions an actual thread-index symbol (as opposed to a local loop
    counter, which is per-instance but not a thread index). *)
let has_thread a =
  List.exists (fun (s, _) -> match s.kind with Thread _ -> true | Local | Shared -> false) a.terms

(** Rename the per-instance symbols (thread ivs and local loop
    counters); shared symbols are preserved so both instances agree on
    them. *)
let rename (f : sym -> sym) a =
  let terms =
    List.map (fun (s, c) -> ((match s.kind with Shared -> s | Thread _ | Local -> f s), c)) a.terms
  in
  { a with terms = List.sort (fun (s1, _) (s2, _) -> compare s1.sid s2.sid) terms }

let pp ppf a =
  let pp_term first ppf (s, c) =
    if c = 1 then Fmt.pf ppf "%s%s" (if first then "" else " + ") s.name
    else if c = -1 then Fmt.pf ppf "%s%s" (if first then "-" else " - ") s.name
    else if c >= 0 then Fmt.pf ppf "%s%d*%s" (if first then "" else " + ") c s.name
    else Fmt.pf ppf "%s%d*%s" (if first then "" else " - ") (-c) s.name
  in
  match a.terms with
  | [] -> Fmt.int ppf a.const
  | t0 :: rest ->
      pp_term true ppf t0;
      List.iter (pp_term false ppf) rest;
      if a.const > 0 then Fmt.pf ppf " + %d" a.const
      else if a.const < 0 then Fmt.pf ppf " - %d" (-a.const)

(** Weak constant interval of an affine expression from its symbols'
    intervals. *)
let interval a =
  let lo =
    List.fold_left
      (fun acc (s, c) ->
        match acc with
        | None -> None
        | Some v -> (
            match if c > 0 then s.lo else s.hi with Some b -> Some (v + (c * b)) | None -> None))
      (Some a.const) a.terms
  and hi =
    List.fold_left
      (fun acc (s, c) ->
        match acc with
        | None -> None
        | Some v -> (
            match if c > 0 then s.hi else s.lo with Some b -> Some (v + (c * b)) | None -> None))
      (Some a.const) a.terms
  in
  (lo, hi)

(* ------------------------------------------------------------------ *)
(* The decision procedure                                              *)
(* ------------------------------------------------------------------ *)

(** A conjunctive system: every [eqs] member is [= 0], every [ges]
    member is [>= 0]. *)
type system = { eqs : t list; ges : t list }

let empty = { eqs = []; ges = [] }
let with_eq a sys = { sys with eqs = a :: sys.eqs }
let with_ge a sys = { sys with ges = a :: sys.ges }

(* Solver rows: [cst + sum coeff*var >= 0] over symbol ids. *)
type row = { cst : int; coeffs : (int * int) list (* (sid, coeff), sorted *) }

let row_of a =
  { cst = a.const; coeffs = List.map (fun (s, c) -> (s.sid, c)) a.terms }

let rec merge_coeffs c1 c2 =
  match (c1, c2) with
  | [], c | c, [] -> c
  | (v1, a) :: r1, (v2, b) :: r2 ->
      if v1 < v2 then (v1, a) :: merge_coeffs r1 c2
      else if v1 > v2 then (v2, b) :: merge_coeffs c1 r2
      else
        let c = a + b in
        if c = 0 then merge_coeffs r1 r2 else (v1, c) :: merge_coeffs r1 r2

let row_combine k1 r1 k2 r2 =
  {
    cst = (k1 * r1.cst) + (k2 * r2.cst);
    coeffs =
      merge_coeffs
        (List.map (fun (v, c) -> (v, k1 * c)) r1.coeffs)
        (List.map (fun (v, c) -> (v, k2 * c)) r2.coeffs);
  }

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

(** Integer tightening: divide by the gcd of the variable
    coefficients, flooring the constant (sound for integer-valued
    variables). *)
let normalize r =
  match r.coeffs with
  | [] -> r
  | (_, c0) :: rest ->
      let g = List.fold_left (fun g (_, c) -> gcd g c) (abs c0) rest in
      if g <= 1 then r
      else
        {
          cst = (if r.cst >= 0 then r.cst / g else -((-r.cst + g - 1) / g));
          coeffs = List.map (fun (v, c) -> (v, c / g)) r.coeffs;
        }

(* A cap on intermediate rows: systems here are tiny (two instances of
   a handful of symbols), so hitting the cap means something
   pathological — give up and treat the system as (possibly)
   feasible, which is the conservative direction. *)
let max_rows = 4096

exception Too_big

(** Fourier–Motzkin: [true] means the system is certainly infeasible
    over the integers; [false] means "not proven infeasible". *)
let fm_infeasible (rows : row list) : bool =
  let exception Infeasible in
  let contradicts r = r.coeffs = [] && r.cst < 0 in
  let step rows =
    (* eliminate the variable with the fewest pos*neg combinations *)
    let occ = Hashtbl.create 16 in
    List.iter
      (fun r ->
        List.iter
          (fun (v, c) ->
            let p, n = try Hashtbl.find occ v with Not_found -> (0, 0) in
            Hashtbl.replace occ v (if c > 0 then (p + 1, n) else (p, n + 1)))
          r.coeffs)
      rows;
    let best = ref None in
    Hashtbl.iter
      (fun v (p, n) ->
        let cost = p * n in
        match !best with Some (_, c) when c <= cost -> () | _ -> best := Some (v, cost))
      occ;
    match !best with
    | None -> None
    | Some (v, _) ->
        let pos, neg, rest =
          List.fold_left
            (fun (p, n, r) row ->
              match List.assoc_opt v row.coeffs with
              | Some c when c > 0 -> ((c, row) :: p, n, r)
              | Some c -> (p, (-c, row) :: n, r)
              | None -> (p, n, row :: r))
            ([], [], []) rows
        in
        let out = ref rest in
        let seen = Hashtbl.create 64 in
        let push r =
          let r = normalize r in
          if contradicts r then raise Infeasible;
          if r.coeffs <> [] || r.cst < 0 then
            if not (Hashtbl.mem seen (r.cst, r.coeffs)) then begin
              Hashtbl.add seen (r.cst, r.coeffs) ();
              out := r :: !out;
              if List.length !out > max_rows then raise Too_big
            end
        in
        List.iter (fun (a, rp) -> List.iter (fun (b, rn) -> push (row_combine b rp a rn)) neg) pos;
        Some !out
  in
  try
    let rows = List.map normalize rows in
    if List.exists contradicts rows then true
    else begin
      let rows = ref rows in
      let continue_ = ref true in
      while !continue_ do
        match step !rows with
        | None -> continue_ := false
        | Some rs -> rows := rs
      done;
      List.exists contradicts !rows
    end
  with
  | Infeasible -> true
  | Too_big -> false

(** All rows of a system: equalities as two inequalities, plus weak
    interval bounds for every symbol that has them. *)
let rows_of (sys : system) : row list =
  let bounds = Hashtbl.create 16 in
  let note a =
    List.iter
      (fun (s, _) -> if not (Hashtbl.mem bounds s.sid) then Hashtbl.add bounds s.sid s)
      a.terms
  in
  List.iter note sys.eqs;
  List.iter note sys.ges;
  let brows =
    Hashtbl.fold
      (fun sid s acc ->
        let acc =
          match s.lo with
          | Some lo -> { cst = -lo; coeffs = [ (sid, 1) ] } :: acc
          | None -> acc
        in
        match s.hi with
        | Some hi -> { cst = hi; coeffs = [ (sid, -1) ] } :: acc
        | None -> acc)
      bounds []
  in
  List.concat_map (fun a -> [ row_of a; row_of (neg a) ]) sys.eqs
  @ List.map row_of sys.ges @ brows

(** Candidate moduli for the modulus-interval test on an equality: the
    distinct absolute coefficient values above 1. *)
let moduli a =
  List.sort_uniq compare (List.filter_map (fun (_, c) -> if abs c > 1 then Some (abs c) else None) a.terms)

let rec infeasible ?(depth = 2) (sys : system) : bool =
  fm_infeasible (rows_of sys)
  || depth > 0
     && List.exists
          (fun e ->
            List.exists
              (fun m ->
                (* S = the part of [e] not divisible by [m]; then
                   S ≡ 0 (mod m). *)
                let s_part =
                  {
                    const = e.const;
                    terms = List.filter (fun (_, c) -> c mod m <> 0) e.terms;
                  }
                in
                (* no information if nothing was divisible *)
                List.length s_part.terms < List.length e.terms
                &&
                match interval s_part with
                | Some lo, Some hi ->
                    let q0 =
                      (* smallest multiple of m that is >= lo *)
                      if lo >= 0 then (lo + m - 1) / m * m else -(-lo / m * m)
                    in
                    let rec mults q acc = if q > hi then List.rev acc else mults (q + m) (q :: acc) in
                    let qs = mults q0 [] in
                    List.length qs <= 8
                    && List.for_all
                         (fun q -> infeasible ~depth:(depth - 1) (with_eq (add_const (-q) s_part) sys))
                         qs
                | _ -> false)
              (moduli e))
          sys.eqs

(** The congruence rule for a pair of modulo guards: both instances
    satisfy [e ≡ 0 (mod m)] for the same uniform [m], so
    [d = e1 - e2 ≡ 0 (mod m)]. If the system proves [d >= m] and
    [d <= -m] and [d = 0] all infeasible, the system itself is
    infeasible. Requires [m >= 1] to be implied by the system (symbol
    intervals). *)
let mod_guard_infeasible ?(depth = 1) (sys : system) ~(d : t) ~(m : t) : bool =
  infeasible ~depth (with_ge (sub d m) sys)
  && infeasible ~depth (with_ge (sub (neg d) m) sys)
  && infeasible ~depth (with_eq d sys)
