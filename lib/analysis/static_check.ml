(** Static barrier-safety and shared-memory race checking over the IR
    (in the spirit of GPUVerify, scaled to this IR's structured
    regions).

    The thread-level parallel body is partitioned into {e barrier
    epochs}: maximal access sets not separated by a scoped barrier.
    Two distinct threads of one block race iff two accesses to the
    same shared buffer, at least one a write, can touch the same
    element within one epoch. Every access is summarized as a
    thread-index-affine index (or an affine base XOR a uniform mask,
    for butterfly patterns) plus the stack of control-flow guards
    under which it executes; pairs are then discharged with the
    {!Affine} decision procedures over two renamed thread instances.

    Loops containing a scoped barrier execute in lockstep, so their
    counter is a single symbol shared by both instances and epochs
    wrap around the loop back-edge (the tail segment of iteration [i]
    shares an epoch with the head segment of iteration [i + step]).
    Loops without a barrier run independently per thread: their
    counter is renamed per instance. Data-dependent guards are dropped
    (a sound over-approximation); accesses whose index the affine
    domain cannot represent produce a conservative "unknown index"
    warning.

    Barrier divergence: a scoped barrier under control flow that
    depends on the barrier's own parallel's induction variables is an
    error (the paper's barrier legality rule); under uniform control
    flow that is merely opaque (e.g. block-index-dependent) it is a
    warning. *)

open Pgpu_ir
module A = Affine

(* ------------------------------------------------------------------ *)
(* Classification domain                                               *)
(* ------------------------------------------------------------------ *)

type buf = { bid : int; bname : string; size : int }

(** What the checker knows about an SSA value. *)
type cls =
  | Aff of A.t
  | Xorv of { base : A.t; mask : A.t }  (** thread-dep base XOR uniform mask *)
  | Bufv of buf
  | Unk of bool  (** [true] = (possibly) thread-dependent *)

type guard =
  | Gcmp of Ops.cmpop * A.t * A.t
  | Gmod0 of { e : A.t; m : A.t }  (** [e % m == 0], [m] uniform *)
  | Gxor of { base : A.t; mask : A.t; gt : bool }
      (** [(base ^ mask) > base] when [gt], else [<=] *)
  | Gopaque of bool  (** dropped; [true] = thread-dependent *)

type iform = Ix of A.t | Ixor of { base : A.t; mask : A.t }

type access = {
  abuf : buf;
  idx : iform;
  write : bool;
  guards : guard list;
  descr : string;  (** e.g. ["store smem[t + s]"] *)
}

type st = {
  mutable diags : Report.diagnostic list;
  mutable counter : int;  (** symbol ids, local to one check *)
  defs : (int, Instr.expr) Hashtbl.t;
  free : (int, cls) Hashtbl.t;  (** classification of free values *)
  const_of : Value.t -> int option;
      (** resolver for constants defined outside the region (the host
          code CSEs block dimensions and literals out of the kernel) *)
  mutable quiet : bool;  (** suppress diagnostics (loop re-walks) *)
  mutable tsyms : A.sym list;  (** thread ivs of the parallel being checked *)
}

let mk_st ?(const_of = fun _ -> None) () =
  {
    diags = [];
    counter = 0;
    defs = Hashtbl.create 64;
    free = Hashtbl.create 16;
    const_of;
    quiet = false;
    tsyms = [];
  }

let diag st ~kernel ~severity ~kind message =
  if not st.quiet then
    st.diags <- { Report.severity; kind; kernel; message } :: st.diags

let fresh_sym st ?(lo = None) ?(hi = None) ~kind name =
  st.counter <- st.counter + 1;
  { A.sid = st.counter; name; kind; lo; hi }

let opaque st ?lo ?hi name = Aff (A.of_sym (fresh_sym st ~lo ~hi ~kind:A.Shared name))

module Env = Map.Make (Int)

type env = cls Env.t

let thread_dep = function
  | Aff a -> A.is_thread_dep a
  | Xorv _ -> true
  | Bufv _ -> false
  | Unk td -> td

let uniform c = not (thread_dep c)

let lookup st (env : env) (v : Value.t) : cls =
  match Env.find_opt v.Value.id env with
  | Some c -> c
  | None -> (
      (* free value of the region: an opaque uniform (kernel argument,
         grid size, host-computed scalar, device buffer) *)
      match Hashtbl.find_opt st.free v.Value.id with
      | Some c -> c
      | None ->
          let c =
            match st.const_of v with
            | Some n -> Aff (A.const n)
            | None -> opaque st v.Value.hint
          in
          Hashtbl.add st.free v.Value.id c;
          c)

let interval_of st env (v : Value.t) =
  match lookup st env v with Aff a -> A.interval a | _ -> (None, None)

(* ------------------------------------------------------------------ *)
(* Expression classification                                           *)
(* ------------------------------------------------------------------ *)

let ival_binop op (l1, h1) (l2, h2) =
  let all4 f =
    match (l1, h1, l2, h2) with
    | Some a, Some b, Some c, Some d ->
        let xs = [ f a c; f a d; f b c; f b d ] in
        (Some (List.fold_left min (f a c) xs), Some (List.fold_left max (f a c) xs))
    | _ -> (None, None)
  in
  let nonneg = match (l1, l2) with Some a, Some c -> a >= 0 && c >= 0 | _ -> false in
  match op with
  | Ops.Mul -> all4 ( * )
  | Ops.Min -> all4 min
  | Ops.Max -> all4 max
  | Ops.Shl when nonneg -> (
      match (l1, h1, l2, h2) with
      | Some a, Some b, Some c, Some d when d < 62 -> (Some (a lsl c), Some (b lsl d))
      | _ -> (None, None))
  | Ops.Shr when nonneg -> (
      match (l1, h1, l2, h2) with
      | Some a, Some b, Some c, Some d -> (Some (a asr d), Some (b asr c))
      | _ -> (None, None))
  | Ops.Div when nonneg -> (
      match (l1, h1, l2, h2) with
      | Some a, Some b, Some c, Some d when c > 0 -> (Some (a / d), Some (b / c))
      | _ -> (None, None))
  | Ops.Rem -> (
      match h2 with
      | Some d when nonneg -> (Some 0, match h1 with Some b -> Some (min b (d - 1)) | None -> Some (d - 1))
      | _ -> (None, None))
  | _ -> (None, None)

let cls_expr st (env : env) (res : Value.t) (e : Instr.expr) : cls =
  let cv v = lookup st env v in
  let opaque_binop ~kind op a b =
    (* non-affine arithmetic: a fresh opaque symbol with an interval
       derived from the operands. [Shared] when the inputs are uniform
       across the block, [Local] when they depend on a per-instance
       loop counter (both instances of the pair check then disagree on
       its value, as they may in an unsynchronized loop). *)
    let ia = match cv a with Aff x -> A.interval x | _ -> (None, None) in
    let ib = match cv b with Aff x -> A.interval x | _ -> (None, None) in
    let lo, hi = ival_binop op ia ib in
    Aff (A.of_sym (fresh_sym st ~lo ~hi ~kind res.Value.hint))
  in
  let opaque_uniform = opaque_binop ~kind:A.Shared in
  match e with
  | Instr.Const (Instr.Ci n) -> Aff (A.const n)
  | Instr.Const (Instr.Cf _) -> Unk false
  | Instr.Cast a -> if Types.is_float res.Value.ty then Unk (thread_dep (cv a)) else cv a
  | Instr.Unop (_, a) -> Unk (thread_dep (cv a))
  | Instr.Cmp (_, a, b) -> Unk (thread_dep (cv a) || thread_dep (cv b))
  | Instr.Select (c, a, b) ->
      if List.for_all uniform [ cv c; cv a; cv b ] then opaque st res.Value.hint
      else Unk true
  | Instr.Load { mem; idx } -> Unk (thread_dep (cv mem) || thread_dep (cv idx))
  | Instr.Binop (op, a, b) -> (
      let ca = cv a and cb = cv b in
      let is_zero = function Aff z -> A.is_const z && z.A.const = 0 | _ -> false in
      match (op, ca, cb) with
      (* adding/xoring a provably-zero term preserves any class, in
         particular the XOR-partner form the frontend wraps in a
         `0 * dim + ixj` flattened 2-D index *)
      | (Ops.Add | Ops.Or | Ops.Xor), z, c when is_zero z -> c
      | (Ops.Add | Ops.Sub | Ops.Or | Ops.Xor), c, z when is_zero z -> c
      | Ops.Add, Aff x, Aff y -> Aff (A.add x y)
      | Ops.Sub, Aff x, Aff y -> Aff (A.sub x y)
      | Ops.Mul, Aff x, Aff y -> (
          match A.mul x y with
          | Some z -> Aff z
          | None ->
              if A.is_uniform x && A.is_uniform y then opaque_uniform op a b
              else if (not (A.has_thread x)) && not (A.has_thread y) then
                opaque_binop ~kind:A.Local op a b
              else Unk true)
      | Ops.Shl, Aff x, Aff y when A.is_const y && y.A.const >= 0 && y.A.const < 31 ->
          Aff (A.scale (1 lsl y.A.const) x)
      | Ops.Xor, Aff x, Aff y when A.is_thread_dep x && A.is_uniform y -> Xorv { base = x; mask = y }
      | Ops.Xor, Aff x, Aff y when A.is_uniform x && A.is_thread_dep y -> Xorv { base = y; mask = x }
      | (Ops.Div | Ops.Rem | Ops.And | Ops.Or | Ops.Xor | Ops.Shl | Ops.Shr | Ops.Min | Ops.Max | Ops.Pow), _, _
        when uniform ca && uniform cb ->
          opaque_uniform op a b
      | ( (Ops.Div | Ops.Rem | Ops.And | Ops.Or | Ops.Xor | Ops.Shl | Ops.Shr | Ops.Min | Ops.Max | Ops.Pow),
          Aff x,
          Aff y )
        when (not (A.has_thread x)) && not (A.has_thread y) ->
          opaque_binop ~kind:A.Local op a b
      | _, _, _ -> Unk (thread_dep ca || thread_dep cb))

(* ------------------------------------------------------------------ *)
(* Guards                                                              *)
(* ------------------------------------------------------------------ *)

let guard_thread_dep = function
  | Gcmp (_, x, y) -> A.is_thread_dep x || A.is_thread_dep y
  | Gmod0 { e; _ } -> A.is_thread_dep e
  | Gxor _ -> true
  | Gopaque td -> td

let neg_cmp = function
  | Ops.Eq -> Ops.Ne
  | Ops.Ne -> Ops.Eq
  | Ops.Lt -> Ops.Ge
  | Ops.Ge -> Ops.Lt
  | Ops.Le -> Ops.Gt
  | Ops.Gt -> Ops.Le

let negate_guard = function
  | Gcmp (op, x, y) -> Gcmp (neg_cmp op, x, y)
  | Gxor r -> Gxor { r with gt = not r.gt }
  | Gmod0 { e; _ } -> Gopaque (A.is_thread_dep e)
  | Gopaque td -> Gopaque td

(** Summarize an [If] condition as a guard by inspecting its defining
    comparison. *)
let guard_of_cond st (env : env) (cond : Value.t) : guard =
  let fallback () = Gopaque (thread_dep (lookup st env cond)) in
  match Hashtbl.find_opt st.defs cond.Value.id with
  | Some (Instr.Cmp (op, a, b)) -> (
      let mod_guard x mv =
        match (lookup st env x, lookup st env mv) with
        | Aff e, Aff m when A.is_uniform m -> Some (Gmod0 { e; m })
        | _ -> None
      in
      let is_zero v = match lookup st env v with Aff z -> A.is_const z && z.A.const = 0 | _ -> false in
      match (lookup st env a, lookup st env b) with
      | Aff x, Aff y -> Gcmp (op, x, y)
      | Xorv { base; mask }, Aff y when A.equal base y && (op = Ops.Gt || op = Ops.Le) ->
          Gxor { base; mask; gt = op = Ops.Gt }
      | Aff y, Xorv { base; mask } when A.equal base y && (op = Ops.Lt || op = Ops.Ge) ->
          Gxor { base; mask; gt = op = Ops.Lt }
      | _, _ -> (
          (* t % m == 0 (either side the Rem) *)
          let try_mod u v =
            if op = Ops.Eq && is_zero v then
              match Hashtbl.find_opt st.defs u.Value.id with
              | Some (Instr.Binop (Ops.Rem, x, mv)) -> mod_guard x mv
              | _ -> None
            else None
          in
          match try_mod a b with
          | Some g -> g
          | None -> ( match try_mod b a with Some g -> g | None -> fallback ())))
  | _ -> fallback ()

(* ------------------------------------------------------------------ *)
(* The epoch walker                                                    *)
(* ------------------------------------------------------------------ *)

(** Accesses of the thread body, partitioned by barriers: [closed] are
    the finished epochs inside the walked region, [open_] the accesses
    since the last barrier. *)
type flow = { closed : access list list; open_ : access list }

let fl0 = { closed = []; open_ = [] }

let pp_iform ppf = function
  | Ix a -> A.pp ppf a
  | Ixor { base; mask } -> Fmt.pf ppf "(%a) ^ (%a)" A.pp base A.pp mask

let record_access st ~kernel (env : env) guards fl ~write (mem : Value.t) (idxv : Value.t) =
  match lookup st env mem with
  | Bufv b -> (
      let push idx =
        let descr =
          Fmt.str "%s %s[%a]" (if write then "store" else "load") b.bname pp_iform idx
        in
        { fl with open_ = { abuf = b; idx; write; guards; descr } :: fl.open_ }
      in
      match lookup st env idxv with
      | Aff a -> push (Ix a)
      | Xorv { base; mask } -> push (Ixor { base; mask })
      | Unk _ | Bufv _ ->
          diag st ~kernel ~severity:Report.Warning ~kind:"unknown-index"
            (Fmt.str
               "cannot summarize the index %%%s of a %s to shared buffer %s; assuming it may \
                race"
               idxv.Value.hint
               (if write then "store" else "load")
               b.bname);
          fl)
  | _ -> fl (* global or host memory: out of scope *)

(** Branch flow normalized for merging: the segment glued to the
    preceding epoch, fully interior epochs, and the segment glued to
    the following epoch. A barrier-free branch contributes its
    accesses to both sides (sound whether or not the branch splits). *)
let branch_parts (f : flow) =
  match f.closed with
  | [] -> (f.open_, [], f.open_)
  | first :: rest -> (first, rest, f.open_)

(* [guards] is every predicate known to hold at the program point (used
   as constraints by the pair checker); [ctl] is the subset coming from
   actual branching ([If]/[While]) — only those witness that a barrier
   may be control-divergent. Thread-domain bounds and lockstep loop
   bounds hold for every thread and never divide a block. *)
let rec walk_block st ~kernel ~tpid (env : env) ~(ctl : guard list) (guards : guard list)
    (fl : flow) (b : Instr.block) : flow * env =
  List.fold_left
    (fun (fl, env) i -> walk_instr st ~kernel ~tpid env ~ctl guards fl i)
    (fl, env) b

and walk_instr st ~kernel ~tpid (env : env) ~ctl guards fl (i : Instr.instr) : flow * env =
  match i with
  | Instr.Let (v, e) ->
      Hashtbl.replace st.defs v.Value.id e;
      let fl =
        match e with
        | Instr.Load { mem; idx } -> record_access st ~kernel env guards fl ~write:false mem idx
        | _ -> fl
      in
      (fl, Env.add v.Value.id (cls_expr st env v e) env)
  | Instr.Store { mem; idx; _ } ->
      (record_access st ~kernel env guards fl ~write:true mem idx, env)
  | Instr.Alloc_shared { res; size; _ } ->
      ( fl,
        Env.add res.Value.id
          (Bufv { bid = res.Value.id; bname = res.Value.hint; size })
          env )
  | Instr.Barrier { scope } ->
      if scope = tpid then begin
        (match List.find_opt guard_thread_dep ctl with
        | Some _ ->
            diag st ~kernel ~severity:Report.Error ~kind:"barrier-divergence"
              "barrier under thread-dependent control flow: threads of one block may not all \
               reach it"
        | None ->
            if ctl <> [] then
              diag st ~kernel ~severity:Report.Warning ~kind:"barrier-divergence"
                "barrier under non-affine (but block-uniform) control flow; epoch analysis \
                 assumes all threads reach it");
        ({ closed = fl.closed @ [ fl.open_ ]; open_ = [] }, env)
      end
      else (fl, env)
  | Instr.If { cond; results; then_; else_ } ->
      let g = guard_of_cond st env cond in
      let tfl, _ = walk_block st ~kernel ~tpid env ~ctl:(g :: ctl) (g :: guards) fl0 then_ in
      let efl, _ =
        walk_block st ~kernel ~tpid env ~ctl:(negate_guard g :: ctl) (negate_guard g :: guards)
          fl0 else_
      in
      let fl =
        if tfl.closed = [] && efl.closed = [] then
          { fl with open_ = fl.open_ @ tfl.open_ @ efl.open_ }
        else begin
          let tf, tm, tl = branch_parts tfl and ef, em, el = branch_parts efl in
          { closed = fl.closed @ [ fl.open_ @ tf @ ef ] @ tm @ em; open_ = tl @ el }
        end
      in
      let env =
        List.fold_left
          (fun env (r : Value.t) ->
            Env.add r.Value.id
              (if guard_thread_dep g then Unk true else opaque st r.Value.hint)
              env)
          env results
      in
      (fl, env)
  | Instr.For { iv; lb; ub; step; iter_args; results; body; _ } ->
      let clb = lookup st env lb and cub = lookup st env ub and cstep = lookup st env step in
      let lo_iv, _ = interval_of st env lb in
      let _, hi_ub = interval_of st env ub in
      let hi_iv = Option.map (fun h -> h - 1) hi_ub in
      let bound_guards ivc =
        let gs = match clb with Aff l -> [ Gcmp (Ops.Ge, ivc, l) ] | _ -> [] in
        match cub with Aff u -> Gcmp (Ops.Lt, ivc, u) :: gs | _ -> gs
      in
      let bind_iters env =
        List.fold_left (fun env (a : Value.t) -> Env.add a.Value.id (Unk true) env) env iter_args
      in
      let bind_results env =
        List.fold_left (fun env (r : Value.t) -> Env.add r.Value.id (Unk true) env) env results
      in
      let fl =
        if Instr.contains_barrier ~scope:tpid body then begin
          (* lockstep loop: one shared counter, wrap-around epochs *)
          if List.exists thread_dep [ clb; cub; cstep ] then
            diag st ~kernel ~severity:Report.Error ~kind:"barrier-divergence"
              "barrier inside a loop with thread-dependent bounds: threads may execute \
               different trip counts";
          let s = fresh_sym st ~lo:lo_iv ~hi:hi_iv ~kind:A.Shared iv.Value.hint in
          let ivc = A.of_sym s in
          let env_body = bind_iters (Env.add iv.Value.id (Aff ivc) env) in
          let bfl, _ =
            walk_block st ~kernel ~tpid env_body ~ctl (bound_guards ivc @ guards) fl0 body
          in
          (* the head segment of the next iteration, for the wrap-around
             epoch: re-walk with iv+step (locals get fresh symbols) *)
          let next_head =
            let stepc = match cstep with Aff a -> a | _ -> A.const 1 in
            let ivn = A.add ivc stepc in
            let envn = bind_iters (Env.add iv.Value.id (Aff ivn) env) in
            let gn =
              (match clb with Aff l -> [ Gcmp (Ops.Ge, ivn, A.add l stepc) ] | _ -> [])
              @ (match cub with Aff u -> [ Gcmp (Ops.Lt, ivn, u) ] | _ -> [])
              @ guards
            in
            let was_quiet = st.quiet in
            st.quiet <- true;
            let nfl, _ = walk_block st ~kernel ~tpid envn ~ctl gn fl0 body in
            st.quiet <- was_quiet;
            match nfl.closed with c :: _ -> c | [] -> nfl.open_
          in
          match bfl.closed with
          | [] -> { fl with open_ = fl.open_ @ bfl.open_ } (* barrier had a different scope *)
          | first :: middles ->
              let taken =
                match (clb, cub) with
                | Aff l, Aff u -> (
                    match (snd (A.interval l), fst (A.interval u)) with
                    | Some lbhi, Some ublo -> lbhi < ublo
                    | _ -> false)
                | _ -> false
              in
              {
                closed = fl.closed @ [ fl.open_ @ first ] @ middles @ [ bfl.open_ @ next_head ];
                open_ = (if taken then bfl.open_ else bfl.open_ @ fl.open_);
              }
        end
        else begin
          (* barrier-free loop: threads iterate independently *)
          let s = fresh_sym st ~lo:lo_iv ~hi:hi_iv ~kind:A.Local iv.Value.hint in
          let ivc = A.of_sym s in
          let env_body = bind_iters (Env.add iv.Value.id (Aff ivc) env) in
          let bfl, _ =
            walk_block st ~kernel ~tpid env_body ~ctl (bound_guards ivc @ guards) fl0 body
          in
          { fl with open_ = fl.open_ @ bfl.open_ @ List.concat bfl.closed }
        end
      in
      (fl, bind_results env)
  | Instr.While { iter_args; results; body; _ } ->
      if Instr.contains_barrier ~scope:tpid body then
        diag st ~kernel ~severity:Report.Error ~kind:"barrier-divergence"
          "barrier inside a data-dependent while loop: threads may execute different trip \
           counts";
      let env_body =
        List.fold_left (fun env (a : Value.t) -> Env.add a.Value.id (Unk true) env) env iter_args
      in
      let bfl, _ =
        walk_block st ~kernel ~tpid env_body ~ctl:(Gopaque true :: ctl)
          (Gopaque true :: guards) fl0 body
      in
      let env =
        List.fold_left (fun env (r : Value.t) -> Env.add r.Value.id (Unk true) env) env results
      in
      ({ fl with open_ = fl.open_ @ bfl.open_ @ List.concat bfl.closed }, env)
  | Instr.Parallel _ | Instr.Gpu_wrapper _ | Instr.Alternatives _ | Instr.Alloc _ | Instr.Free _
  | Instr.Memcpy _ | Instr.Intrinsic _ | Instr.Yield _ | Instr.Yield_while _ | Instr.Return _ ->
      (fl, env)

(* ------------------------------------------------------------------ *)
(* Pair checking                                                       *)
(* ------------------------------------------------------------------ *)

(** Affine constraint of a guard for one instance; [None] when the
    guard carries no conjunctive information. *)
let constraint_of_guard = function
  | Gcmp (Ops.Lt, x, y) -> Some (A.add_const (-1) (A.sub y x))
  | Gcmp (Ops.Le, x, y) -> Some (A.sub y x)
  | Gcmp (Ops.Gt, x, y) -> Some (A.add_const (-1) (A.sub x y))
  | Gcmp (Ops.Ge, x, y) -> Some (A.sub x y)
  | Gcmp ((Ops.Eq | Ops.Ne), _, _) | Gmod0 _ | Gxor _ | Gopaque _ -> None

let eq_of_guard = function Gcmp (Ops.Eq, x, y) -> Some (A.sub x y) | _ -> None

type verdict = Safe | Racy | Unprovable

(** Decide one pair of accesses for two distinct thread instances. *)
let check_pair st (a1 : access) (a2 : access) : verdict =
  (* instance renamings for per-thread symbols *)
  let inst tag =
    let tbl = Hashtbl.create 8 in
    fun (s : A.sym) ->
      match Hashtbl.find_opt tbl s.A.sid with
      | Some s' -> s'
      | None ->
          st.counter <- st.counter + 1;
          let s' = { s with A.sid = st.counter; name = s.A.name ^ tag } in
          Hashtbl.add tbl s.A.sid s';
          s'
  in
  let r1 = inst "₁" and r2 = inst "₂" in
  let guard_constraints r gs sys =
    List.fold_left
      (fun sys g ->
        let sys =
          match constraint_of_guard g with
          | Some c -> A.with_ge (A.rename r c) sys
          | None -> sys
        in
        match eq_of_guard g with Some e -> A.with_eq (A.rename r e) sys | None -> sys)
      sys gs
  in
  let inbounds r (b : buf) = function
    | Ix a ->
        fun sys ->
          let a = A.rename r a in
          A.with_ge a (A.with_ge (A.sub (A.const (b.size - 1)) a) sys)
    | Ixor _ -> fun sys -> sys
  in
  (* collision condition *)
  let affine_collision =
    match (a1.idx, a2.idx) with
    | Ix x1, Ix x2 -> Some (A.sub (A.rename r1 x1) (A.rename r2 x2))
    | Ixor { base = b1; mask = m1 }, Ixor { base = b2; mask = m2 } ->
        if A.equal m1 m2 then Some (A.sub (A.rename r1 b1) (A.rename r2 b2)) else None
    | Ix a, Ixor x | Ixor x, Ix a ->
        (* the antisymmetric swap rule: collision means a = base ^ mask;
           if both instances are guarded by (own ^ mask) > own, the
           XOR involution gives base > a and a > base: contradiction. *)
        let guarded base gs =
          List.exists
            (function
              | Gxor { base = gb; mask = gm; gt = true } -> A.equal gb base && A.equal gm x.mask
              | _ -> false)
            gs
        in
        let ga, gx = if match a1.idx with Ix _ -> true | _ -> false then (a1.guards, a2.guards) else (a2.guards, a1.guards) in
        if guarded a ga && guarded x.base gx then Some (A.const 1) (* unsatisfiable marker *)
        else None
  in
  match affine_collision with
  | None -> Unprovable
  | Some c when A.is_const c && c.A.const <> 0 -> Safe (* swap rule discharged it *)
  | Some collision ->
      let base_sys =
        A.empty |> A.with_eq collision
        |> guard_constraints r1 a1.guards
        |> guard_constraints r2 a2.guards
        |> inbounds r1 a1.abuf a1.idx |> inbounds r2 a2.abuf a2.idx
      in
      let mod_pairs =
        List.concat_map
          (fun g1 ->
            match g1 with
            | Gmod0 { e = e1; m = m1 } ->
                List.filter_map
                  (function
                    | Gmod0 { e = e2; m = m2 } when A.equal m1 m2 ->
                        Some (A.sub (A.rename r1 e1) (A.rename r2 e2), m1)
                    | _ -> None)
                  a2.guards
            | _ -> [])
          a1.guards
      in
      let branch_infeasible extra =
        let sys = A.with_ge extra base_sys in
        A.infeasible sys
        || List.exists (fun (d, m) -> A.mod_guard_infeasible sys ~d ~m) mod_pairs
      in
      let distinct_branches =
        List.concat_map
          (fun (t : A.sym) ->
            let t1 = A.of_sym (r1 t) and t2 = A.of_sym (r2 t) in
            [ A.add_const (-1) (A.sub t1 t2); A.add_const (-1) (A.sub t2 t1) ])
          st.tsyms
      in
      if distinct_branches = [] then Safe (* no thread dimension: single lane *)
      else if List.for_all branch_infeasible distinct_branches then Safe
      else Racy

let check_epochs st ~kernel (epochs : access list list) =
  List.iteri
    (fun ei accesses ->
      let arr = Array.of_list accesses in
      let n = Array.length arr in
      for i = 0 to n - 1 do
        for j = i to n - 1 do
          let a1 = arr.(i) and a2 = arr.(j) in
          if a1.abuf.bid = a2.abuf.bid && (a1.write || a2.write) then
            match check_pair st a1 a2 with
            | Safe -> ()
            | Racy ->
                diag st ~kernel ~severity:Report.Error ~kind:"shared-race"
                  (Fmt.str
                     "possible %s-%s race on shared buffer %s between '%s' and '%s' (barrier \
                      epoch %d): distinct threads can touch the same element"
                     (if a1.write then "write" else "read")
                     (if a2.write then "write" else "read")
                     a1.abuf.bname a1.descr a2.descr ei)
            | Unprovable ->
                diag st ~kernel ~severity:Report.Warning ~kind:"possible-race"
                  (Fmt.str
                     "cannot prove '%s' and '%s' disjoint on shared buffer %s (barrier epoch \
                      %d)"
                     a1.descr a2.descr a1.abuf.bname ei)
        done
      done)
    epochs

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

(** Walk the uniform (host / grid) context: classify values, recurse
    through structure, and check every thread-level parallel found. *)
let rec walk_uniform st ~kernel (env : env) (b : Instr.block) : env =
  List.fold_left
    (fun env (i : Instr.instr) ->
      match i with
      | Instr.Let (v, e) ->
          Hashtbl.replace st.defs v.Value.id e;
          Env.add v.Value.id (cls_expr st env v e) env
      | Instr.Alloc_shared { res; size; _ } ->
          Env.add res.Value.id (Bufv { bid = res.Value.id; bname = res.Value.hint; size }) env
      | Instr.Gpu_wrapper { name; body; _ } ->
          ignore (walk_uniform st ~kernel:name env body);
          env
      | Instr.Alternatives { descs; regions; _ } ->
          List.iter2
            (fun desc region ->
              ignore (walk_uniform st ~kernel:(kernel ^ ":" ^ desc) env region))
            descs regions;
          env
      | Instr.Parallel { level = Instr.Blocks; ivs; ubs; body; _ } ->
          let env =
            List.fold_left2
              (fun env (iv : Value.t) ub ->
                let _, hi_ub = interval_of st env ub in
                let s =
                  fresh_sym st ~lo:(Some 0)
                    ~hi:(Option.map (fun h -> h - 1) hi_ub)
                    ~kind:A.Shared iv.Value.hint
                in
                Env.add iv.Value.id (Aff (A.of_sym s)) env)
              env ivs ubs
          in
          ignore (walk_uniform st ~kernel env body);
          env
      | Instr.Parallel { level = Instr.Threads; pid; ivs; ubs; body } ->
          let saved_tsyms = st.tsyms in
          let env_t, tsyms, tguards =
            List.fold_left2
              (fun (env, tsyms, gs) (iv : Value.t) ub ->
                let _, hi_ub = interval_of st env ub in
                let s =
                  fresh_sym st ~lo:(Some 0)
                    ~hi:(Option.map (fun h -> h - 1) hi_ub)
                    ~kind:(A.Thread (List.length tsyms))
                    iv.Value.hint
                in
                let ivc = A.of_sym s in
                let gs =
                  match lookup st env ub with
                  | Aff u -> Gcmp (Ops.Lt, ivc, u) :: Gcmp (Ops.Ge, ivc, A.const 0) :: gs
                  | _ -> Gcmp (Ops.Ge, ivc, A.const 0) :: gs
                in
                (Env.add iv.Value.id (Aff ivc) env, tsyms @ [ s ], gs))
              (env, [], []) ivs ubs
          in
          st.tsyms <- tsyms;
          let fl, _ = walk_block st ~kernel ~tpid:pid env_t ~ctl:[] tguards fl0 body in
          check_epochs st ~kernel (fl.closed @ [ fl.open_ ]);
          st.tsyms <- saved_tsyms;
          env
      | Instr.If { then_; else_; results; _ } ->
          ignore (walk_uniform st ~kernel env then_);
          ignore (walk_uniform st ~kernel env else_);
          List.fold_left
            (fun env (r : Value.t) -> Env.add r.Value.id (opaque st r.Value.hint) env)
            env results
      | Instr.For { iv; lb; ub; iter_args; results; body; _ } ->
          let lo_iv, _ = interval_of st env lb in
          let _, hi_ub = interval_of st env ub in
          let s =
            fresh_sym st ~lo:lo_iv ~hi:(Option.map (fun h -> h - 1) hi_ub) ~kind:A.Shared
              iv.Value.hint
          in
          let env_body =
            List.fold_left
              (fun env (a : Value.t) -> Env.add a.Value.id (opaque st a.Value.hint) env)
              (Env.add iv.Value.id (Aff (A.of_sym s)) env)
              iter_args
          in
          ignore (walk_uniform st ~kernel env_body body);
          List.fold_left
            (fun env (r : Value.t) -> Env.add r.Value.id (opaque st r.Value.hint) env)
            env results
      | Instr.While { iter_args; results; body; _ } ->
          let env_body =
            List.fold_left
              (fun env (a : Value.t) -> Env.add a.Value.id (opaque st a.Value.hint) env)
              env iter_args
          in
          ignore (walk_uniform st ~kernel env_body body);
          List.fold_left
            (fun env (r : Value.t) -> Env.add r.Value.id (opaque st r.Value.hint) env)
            env results
      | Instr.Store _ | Instr.Barrier _ | Instr.Alloc _ | Instr.Free _ | Instr.Memcpy _
      | Instr.Intrinsic _ | Instr.Yield _ | Instr.Yield_while _ | Instr.Return _ ->
          env)
    env b

let dedup ds =
  List.sort_uniq compare ds

(** Check a kernel region (the body of a [Gpu_wrapper], or a candidate
    region produced by [Alternatives.expand]). [const_of] resolves
    constants the host code defines outside the region — without it
    thread bounds and halo offsets degrade to opaque symbols and the
    checker loses most of its precision. *)
let check_region ?const_of ~kernel (region : Instr.block) : Report.diagnostic list =
  let st = mk_st ?const_of () in
  ignore (walk_uniform st ~kernel Env.empty region);
  dedup (List.rev st.diags)

(** Check every kernel of a module. *)
let check_modul (m : Instr.modul) : Report.diagnostic list =
  let st = mk_st () in
  List.iter (fun (f : Instr.func) -> ignore (walk_uniform st ~kernel:f.Instr.fname Env.empty f.Instr.body)) m.Instr.funcs;
  dedup (List.rev st.diags)
