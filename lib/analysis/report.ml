(** Diagnostics produced by the barrier-safety and race analyses, with
    text and JSON renderings. Diagnostic messages are built from value
    hints (not SSA ids), so reports are stable across processes and can
    be pinned by golden tests. *)

module Json = Pgpu_trace.Json

type severity = Error | Warning

type diagnostic = {
  severity : severity;
  kind : string;
      (** stable machine-readable tag: ["barrier-divergence"],
          ["shared-race"], ["possible-race"], ["unknown-index"],
          ["dynamic-race"], ["device-error"] *)
  kernel : string;  (** kernel name, suffixed with the alternative desc if any *)
  message : string;
}

let errors ds = List.filter (fun d -> d.severity = Error) ds
let has_errors ds = List.exists (fun d -> d.severity = Error) ds

let pp_severity ppf = function
  | Error -> Fmt.string ppf "error"
  | Warning -> Fmt.string ppf "warning"

let pp_diagnostic ppf d =
  Fmt.pf ppf "%a[%s] %s: %s" pp_severity d.severity d.kind d.kernel d.message

(** The text report: one line per diagnostic plus a summary line, in a
    deterministic order (kernel, then severity, then message). *)
let sort ds =
  List.stable_sort
    (fun a b ->
      match String.compare a.kernel b.kernel with
      | 0 -> ( match compare a.severity b.severity with 0 -> compare a.message b.message | c -> c)
      | c -> c)
    ds

let pp_report ppf ds =
  let ds = sort ds in
  List.iter (fun d -> Fmt.pf ppf "%a@." pp_diagnostic d) ds;
  let ne = List.length (errors ds) and nw = List.length ds - List.length (errors ds) in
  if ds = [] then Fmt.pf ppf "no diagnostics@."
  else Fmt.pf ppf "%d error(s), %d warning(s)@." ne nw

let to_string ds = Fmt.str "%a" pp_report ds

let json_of_diagnostic d =
  Json.Obj
    [
      ("severity", Json.Str (Fmt.str "%a" pp_severity d.severity));
      ("kind", Json.Str d.kind);
      ("kernel", Json.Str d.kernel);
      ("message", Json.Str d.message);
    ]

let to_json ds =
  let ds = sort ds in
  Json.Obj
    [
      ("errors", Json.Int (List.length (errors ds)));
      ("warnings", Json.Int (List.length ds - List.length (errors ds)));
      ("diagnostics", Json.List (List.map json_of_diagnostic ds));
    ]
