(** Entry points tying the static checker and the simulator-backed
    dynamic race detector into one diagnostic report. *)

module Racecheck = Pgpu_gpusim.Racecheck

let check_modul = Static_check.check_modul
let check_region = Static_check.check_region

(** Convert the conflicts recorded by an instrumented execution into
    diagnostics. *)
let diagnostics_of_racecheck ?(kernel = "kernel") (rc : Racecheck.t) : Report.diagnostic list =
  List.map
    (fun (c : Racecheck.conflict) ->
      {
        Report.severity = Report.Error;
        kind = "dynamic-race";
        kernel;
        message =
          Fmt.str
            "%s conflict on shared address %d (sector %d) in block %d, barrier epoch %d: '%s' \
             by lane %d vs '%s' by lane %d with no intervening barrier"
            (match c.Racecheck.ckind with `WW -> "write-write" | `RW -> "read-write")
            c.Racecheck.addr c.Racecheck.sector c.Racecheck.block c.Racecheck.epoch
            c.Racecheck.op1 c.Racecheck.lane1 c.Racecheck.op2 c.Racecheck.lane2;
      })
    (Racecheck.conflicts rc)
