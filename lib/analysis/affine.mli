(** Thread-index-affine expressions and the integer (in)feasibility
    procedures behind the static race checker. Race queries become
    conjunctive systems of affine equalities/inequalities over two
    renamed instances of the thread symbols; the decision stack is
    Fourier–Motzkin elimination with integer tightening, a
    modulus-interval test per equality (subsuming the GCD test), and a
    congruence rule for modulo guards. All procedures answer [true]
    only when infeasibility is certain — [false] means "not proven". *)

type kind =
  | Thread of int  (** thread induction variable, dimension index *)
  | Local  (** per-thread-instance (counter of a barrier-free loop) *)
  | Shared  (** uniform across the threads of a block *)

type sym = {
  sid : int;
  name : string;  (** printing hint, not an identity *)
  kind : kind;
  lo : int option;  (** weak constant bounds, inclusive *)
  hi : int option;
}

(** [const + sum coeff * sym]; terms sorted by [sid], coefficients
    nonzero. *)
type t = { const : int; terms : (sym * int) list }

val const : int -> t
val of_sym : sym -> t
val is_const : t -> bool
val add : t -> t -> t
val scale : int -> t -> t
val neg : t -> t
val sub : t -> t -> t
val add_const : int -> t -> t

(** [a * b] when one side is a constant; [None] otherwise. *)
val mul : t -> t -> t option

val equal : t -> t -> bool
val syms : t -> sym list

(** No per-instance symbols: every term is [Shared]. *)
val is_uniform : t -> bool

val is_thread_dep : t -> bool

(** Mentions an actual thread-index symbol (as opposed to a local loop
    counter, which is per-instance but not a thread index). *)
val has_thread : t -> bool

(** Rename the per-instance symbols (thread ivs and local loop
    counters); shared symbols are preserved so both instances agree on
    them. *)
val rename : (sym -> sym) -> t -> t

val pp : t Fmt.t

(** Weak constant interval of an affine expression from its symbols'
    intervals ([None] side = unbounded). *)
val interval : t -> int option * int option

(** A conjunctive system: every [eqs] member is [= 0], every [ges]
    member is [>= 0]. *)
type system = { eqs : t list; ges : t list }

val empty : system
val with_eq : t -> system -> system
val with_ge : t -> system -> system

(** [true] iff the system is certainly infeasible over the integers.
    [depth] (default 2) bounds the recursive modulus-interval case
    splits. *)
val infeasible : ?depth:int -> system -> bool

(** The congruence rule for a pair of modulo guards: both instances
    satisfy [e ≡ 0 (mod m)] for the same uniform [m], so
    [d = e1 - e2 ≡ 0 (mod m)]. [true] when [d >= m], [d <= -m] and
    [d = 0] are all infeasible under [sys] — which makes [sys] itself
    infeasible. *)
val mod_guard_infeasible : ?depth:int -> system -> d:t -> m:t -> bool
