(** Deterministic span-based tracer: nested spans, instant events and
    counter samples, stamped by caller-supplied tick sources (pass
    sequence numbers on the compiler side, simulated seconds on the
    runtime side) so traces are bit-identical across runs. A disabled
    tracer is a no-op sink — one mutable field check per call. *)

type event =
  | Span of {
      name : string;
      cat : string;
      ts : float;  (** start tick *)
      dur : float;  (** duration in ticks *)
      args : (string * Json.t) list;
    }
  | Instant of { name : string; cat : string; ts : float; args : (string * Json.t) list }
  | Counter of { name : string; ts : float; value : float }

type t

(** The shared no-op sink: always disabled, never records. *)
val disabled : t

(** A fresh enabled tracer. The default [clock] is [seq_clock ()]. *)
val create : ?clock:(unit -> float) -> unit -> t

(** A deterministic 0, 1, 2, ... tick source. *)
val seq_clock : unit -> unit -> float

val enabled : t -> bool
val set_clock : t -> (unit -> float) -> unit

(** The current clock value (advances sequence clocks); 0 when
    disabled. *)
val now : t -> float

val begin_span : t -> ?cat:string -> ?args:(string * Json.t) list -> string -> unit

(** End the innermost open span, merging [args] into its begin-time
    arguments; ignored when no span is open. *)
val end_span : t -> ?args:(string * Json.t) list -> unit -> unit

(** [with_span t name f] wraps [f] in a span; the span is closed on
    exceptions too (recording the exception as an argument). *)
val with_span : t -> ?cat:string -> ?args:(string * Json.t) list -> string -> (unit -> 'a) -> 'a

(** A complete span with explicit timestamp and duration (simulated
    time on the runtime side). *)
val span_at :
  t -> ?cat:string -> ?args:(string * Json.t) list -> ts:float -> dur:float -> string -> unit

val instant : t -> ?cat:string -> ?args:(string * Json.t) list -> string -> unit
val instant_at : t -> ?cat:string -> ?args:(string * Json.t) list -> ts:float -> string -> unit
val counter : t -> ?ts:float -> string -> float -> unit

(** Close every still-open span, innermost first. *)
val close_all : t -> unit

(** Number of currently open spans. *)
val depth : t -> int

(** Events in emission order (a span appears at its end time). *)
val events : t -> event list

val clear : t -> unit
val event_name : event -> string
val event_ts : event -> float
val pp_event : event Fmt.t
