(** Chrome trace-event exporter: renders tracer events in the Trace
    Event Format consumed by Perfetto / [chrome://tracing]. Spans
    become complete ("X") events, instants "i", counters "C";
    categories map to named threads of one process. *)

val json_of_events : Tracer.event list -> Json.t
val to_string : Tracer.t -> string

(** Close open spans and write the trace (pretty-printed) to a file. *)
val write_file : string -> Tracer.t -> unit
