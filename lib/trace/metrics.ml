(** Flat metrics exporter.

    Reduces a trace to a single flat JSON object suitable for diffing
    and dashboards: the final value of every counter, and per-span-name
    totals/counts. Keys are ["counter.<name>"], ["span.<name>.count"],
    ["span.<name>.total"] and ["instant.<name>.count"]. *)

let of_events (events : Tracer.event list) : Json.t
    =
  let counters = Hashtbl.create 16 in
  let span_count = Hashtbl.create 16 in
  let span_total = Hashtbl.create 16 in
  let instants = Hashtbl.create 16 in
  let bump tbl k v = Hashtbl.replace tbl k (v +. try Hashtbl.find tbl k with Not_found -> 0.) in
  List.iter
    (fun (e : Tracer.event) ->
      match e with
      | Tracer.Counter { name; value; _ } -> Hashtbl.replace counters name value
      | Tracer.Span { name; dur; _ } ->
          bump span_count name 1.;
          bump span_total name dur
      | Tracer.Instant { name; _ } -> bump instants name 1.)
    events;
  let sorted tbl = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare in
  let fields =
    List.concat
      [
        List.map (fun (k, v) -> ("counter." ^ k, Json.Float v)) (sorted counters);
        List.concat_map
          (fun (k, v) ->
            [
              ("span." ^ k ^ ".count", Json.Float v);
              ("span." ^ k ^ ".total", Json.Float (try Hashtbl.find span_total k with Not_found -> 0.));
            ])
          (sorted span_count);
        List.map (fun (k, v) -> ("instant." ^ k ^ ".count", Json.Float v)) (sorted instants);
      ]
  in
  Json.Obj fields

let of_tracer tracer = of_events (Tracer.events tracer)

let write_file path tracer =
  Tracer.close_all tracer;
  Json.to_file path (of_tracer tracer)
