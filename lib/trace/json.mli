(** Minimal JSON tree, writer and reader — the single serialization
    point for every machine-readable output the stack produces (Chrome
    traces, flat metrics, profiler reports). The writer escapes
    strings properly and never emits trailing commas; the reader is a
    small recursive-descent parser used to validate emitted output. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val str : string -> t
val int : int -> t
val float : float -> t
val bool : bool -> t
val list : t list -> t
val obj : (string * t) list -> t
val of_float_list : float list -> t

(** Compact (single-line) serialization. Non-finite floats are written
    as [null] so the output is always valid JSON. *)
val to_string : t -> string

(** Indented serialization for human-inspected files. *)
val to_string_pretty : t -> string

val write : Buffer.t -> t -> unit
val pp : t Fmt.t

(** Write the pretty form to a file. *)
val to_file : string -> t -> unit

(** Parse a JSON document; rejects trailing garbage. *)
val of_string : string -> (t, string) result

(** Field lookup on objects; [None] on other values. *)
val member : string -> t -> t option

(** Structural equality; [Int n] and [Float f] compare equal when
    numerically equal, NaNs compare equal to each other. *)
val equal : t -> t -> bool
