(** Minimal JSON tree, writer and reader.

    The single serialization point for every machine-readable output
    the stack produces (Chrome traces, flat metrics, profiler
    reports): values are built as trees and written with proper string
    escaping and no trailing commas, instead of ad-hoc [Printf]
    formatting at each call site. A small recursive-descent reader is
    included so tests and tools can validate emitted output
    round-trip. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* --- constructors --- *)

let str s = Str s
let int n = Int n
let float f = Float f
let bool b = Bool b
let list l = List l
let obj fields = Obj fields

let of_float_list l = List (List.map (fun f -> Float f) l)

(* --- writer --- *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(** Floats must serialize to valid JSON numbers: non-finite values
    become [null], and finite values always carry enough digits to
    round-trip. *)
let add_float buf f =
  if not (Float.is_finite f) then Buffer.add_string buf "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.1f" f)
  else
    (* shortest representation that still round-trips *)
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then Buffer.add_string buf s
    else Buffer.add_string buf (Printf.sprintf "%.17g" f)

let rec write buf (v : t) =
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> add_float buf f
  | Str s -> add_escaped buf s
  | List l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        l;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_char buf ',';
          add_escaped buf k;
          Buffer.add_char buf ':';
          write buf x)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(** Indented writer for human-inspected files. *)
let rec write_indented buf ~indent (v : t) =
  let pad n = String.make n ' ' in
  match v with
  | List (_ :: _ as l) ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (pad (indent + 2));
          write_indented buf ~indent:(indent + 2) x)
        l;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad indent);
      Buffer.add_char buf ']'
  | Obj (_ :: _ as fields) ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (pad (indent + 2));
          add_escaped buf k;
          Buffer.add_string buf ": ";
          write_indented buf ~indent:(indent + 2) x)
        fields;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad indent);
      Buffer.add_char buf '}'
  | v -> write buf v

let to_string_pretty v =
  let buf = Buffer.create 256 in
  write_indented buf ~indent:0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let pp ppf v = Fmt.string ppf (to_string v)

let to_file path v =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string_pretty v))

(* --- reader --- *)

exception Parse_error of string

let parse_fail fmt = Fmt.kstr (fun s -> raise (Parse_error s)) fmt

type cursor = { s : string; mutable pos : int }

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> parse_fail "at %d: expected %C, found %C" c.pos ch x
  | None -> parse_fail "at %d: expected %C, found end of input" c.pos ch

let parse_literal c lit (v : t) =
  if
    c.pos + String.length lit <= String.length c.s
    && String.sub c.s c.pos (String.length lit) = lit
  then begin
    c.pos <- c.pos + String.length lit;
    v
  end
  else parse_fail "at %d: invalid literal" c.pos

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> parse_fail "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | Some 'n' -> advance c; Buffer.add_char buf '\n'; go ()
        | Some 't' -> advance c; Buffer.add_char buf '\t'; go ()
        | Some 'r' -> advance c; Buffer.add_char buf '\r'; go ()
        | Some 'b' -> advance c; Buffer.add_char buf '\b'; go ()
        | Some 'f' -> advance c; Buffer.add_char buf '\012'; go ()
        | Some ('"' | '\\' | '/') ->
            Buffer.add_char buf (Option.get (peek c));
            advance c;
            go ()
        | Some 'u' ->
            advance c;
            if c.pos + 4 > String.length c.s then parse_fail "truncated \\u escape";
            let hex = String.sub c.s c.pos 4 in
            let code =
              try int_of_string ("0x" ^ hex) with _ -> parse_fail "bad \\u escape %S" hex
            in
            c.pos <- c.pos + 4;
            (* decode only the code points our writer emits (< 0x20
               controls); others are stored as UTF-8 of the scalar *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end;
            go ()
        | _ -> parse_fail "at %d: bad escape" c.pos)
    | Some ch ->
        advance c;
        Buffer.add_char buf ch;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  while (match peek c with Some ch when is_num_char ch -> true | _ -> false) do
    advance c
  done;
  let s = String.sub c.s start (c.pos - start) in
  match int_of_string_opt s with
  | Some n -> Int n
  | None -> (
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> parse_fail "at %d: invalid number %S" start s)

let rec parse_value c : t =
  skip_ws c;
  match peek c with
  | None -> parse_fail "unexpected end of input"
  | Some 'n' -> parse_literal c "null" Null
  | Some 't' -> parse_literal c "true" (Bool true)
  | Some 'f' -> parse_literal c "false" (Bool false)
  | Some '"' -> Str (parse_string c)
  | Some ('0' .. '9' | '-') -> parse_number c
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        List []
      end
      else begin
        let items = ref [ parse_value c ] in
        skip_ws c;
        while peek c = Some ',' do
          advance c;
          items := parse_value c :: !items;
          skip_ws c
        done;
        expect c ']';
        List (List.rev !items)
      end
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else begin
        let field () =
          skip_ws c;
          let k = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws c;
        while peek c = Some ',' do
          advance c;
          fields := field () :: !fields;
          skip_ws c
        done;
        expect c '}';
        Obj (List.rev !fields)
      end
  | Some ch -> parse_fail "at %d: unexpected %C" c.pos ch

let of_string s : (t, string) result =
  let c = { s; pos = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if c.pos <> String.length s then Error (Fmt.str "trailing input at %d" c.pos) else Ok v
  | exception Parse_error m -> Error m

(* --- accessors (used by tests and tools) --- *)

let member k v = match v with Obj fields -> List.assoc_opt k fields | _ -> None

let equal a b =
  let rec eq a b =
    match (a, b) with
    | Null, Null -> true
    | Bool x, Bool y -> x = y
    | Int x, Int y -> x = y
    | Float x, Float y -> (Float.is_nan x && Float.is_nan y) || Float.equal x y
    | Int x, Float y | Float y, Int x -> Float.equal (float_of_int x) y
    | Str x, Str y -> String.equal x y
    | List x, List y -> List.length x = List.length y && List.for_all2 eq x y
    | Obj x, Obj y ->
        List.length x = List.length y
        && List.for_all2 (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && eq v1 v2) x y
    | _ -> false
  in
  eq a b
