(** Nsight-Compute-style profiler report.

    Renders the launch records of a run — the simulator's event
    counters ([Gpusim.Counters]), the timing-model breakdown and the
    backend statistics — as a per-kernel text report plus a
    machine-readable JSON form. The counter section reproduces exactly
    the Table II metric set of the paper (runtime, LSU/FMA
    utilization, L2<->L1 traffic, L1<->SM and shared-memory request
    counts), so a [pgpu profile] run stands in for the Nsight Compute
    runs behind the paper's profiling analysis. *)

module Runtime = Pgpu_runtime.Runtime
module Counters = Pgpu_gpusim.Counters
module Timing = Pgpu_gpusim.Timing
module Exec = Pgpu_gpusim.Exec
module Backend = Pgpu_target.Backend
module Occupancy = Pgpu_target.Occupancy
module Bottleneck = Pgpu_gpusim.Bottleneck
module Json = Pgpu_trace.Json

type kernel_profile = {
  kernel : string;
  launches : int;
  seconds : float;  (** total simulated seconds across launches *)
  alternative : int option;  (** alternatives region of the dominant launch *)
  grid_dims : int list;  (** dominant (largest-grid) launch *)
  block_dims : int list;
  nblocks : int;
  threads_per_block : int;
  regs_per_thread : int;
  spilled : int;
  static_shmem : int;
  ilp : float;
  mlp : float;
  occupancy : float;
  occupancy_limiter : string;
  blocks_per_sm : int;
  utilization : float;
  lsu_utilization : float;
  fma_utilization : float;
  bound : string;  (** the roofline resource that limits the kernel *)
  bottleneck : Bottleneck.t;  (** attribution of the dominant launch *)
  cycles : float;  (** simulated device cycles of the dominant launch *)
  counters : Counters.t;  (** aggregated over all launches *)
}

type report = { composite_seconds : float; kernels : kernel_profile list }

(** Name of the timing-model resource with the largest cycle count —
    what Nsight would call the limiting pipe. *)
let bound_name (b : Timing.breakdown) =
  fst
    (List.fold_left
       (fun (bn, bc) (n, c) -> if c > bc then (n, c) else (bn, bc))
       ("issue", -1.) (Timing.terms b))

let of_records (records : Runtime.launch_record list) : kernel_profile list =
  let names =
    List.fold_left
      (fun acc (r : Runtime.launch_record) ->
        if List.mem r.Runtime.kernel acc then acc else acc @ [ r.Runtime.kernel ])
      [] records
  in
  List.map
    (fun kernel ->
      let recs =
        List.filter (fun (r : Runtime.launch_record) -> String.equal r.Runtime.kernel kernel) records
      in
      let seconds = List.fold_left (fun acc (r : Runtime.launch_record) -> acc +. r.Runtime.seconds) 0. recs in
      let counters = Counters.create () in
      List.iter
        (fun (r : Runtime.launch_record) -> Counters.accumulate counters r.Runtime.result.Exec.counters)
        recs;
      (* utilizations, occupancy and the limiting bound come from the
         dominant (largest-grid) launch — what a profiler run of the
         kernel reports *)
      let dominant =
        List.fold_left
          (fun acc (r : Runtime.launch_record) ->
            match acc with
            | Some (a : Runtime.launch_record)
              when a.Runtime.result.Exec.nblocks >= r.Runtime.result.Exec.nblocks ->
                acc
            | _ -> Some r)
          None recs
      in
      let d = Option.get dominant in
      let b = d.Runtime.breakdown in
      {
        kernel;
        launches = List.length recs;
        seconds;
        alternative = d.Runtime.alternative;
        grid_dims = d.Runtime.result.Exec.grid_dims;
        block_dims = d.Runtime.result.Exec.block_dims;
        nblocks = d.Runtime.result.Exec.nblocks;
        threads_per_block = d.Runtime.result.Exec.threads_per_block;
        regs_per_thread = d.Runtime.stats.Backend.regs_per_thread;
        spilled = d.Runtime.stats.Backend.spilled;
        static_shmem = d.Runtime.stats.Backend.static_shmem;
        ilp = d.Runtime.stats.Backend.ilp;
        mlp = d.Runtime.stats.Backend.mlp;
        occupancy = b.Timing.occupancy.Occupancy.occupancy;
        occupancy_limiter = b.Timing.occupancy.Occupancy.limiter;
        blocks_per_sm = b.Timing.occupancy.Occupancy.blocks_per_sm;
        utilization = b.Timing.utilization;
        lsu_utilization = b.Timing.lsu_utilization;
        fma_utilization = b.Timing.fma_utilization;
        bound = bound_name b;
        bottleneck = d.Runtime.bottleneck;
        cycles = b.Timing.cycles;
        counters;
      })
    names

let of_run ~composite_seconds records = { composite_seconds; kernels = of_records records }

(* ------------------------------------------------------------------ *)
(* Text report                                                         *)
(* ------------------------------------------------------------------ *)

let pp_dims ppf dims = Fmt.pf ppf "(%a)" Fmt.(list ~sep:comma int) dims

let pp_kernel ~composite ppf (k : kernel_profile) =
  let line label fmt = Fmt.pf ppf ("  %-24s " ^^ fmt ^^ "@.") label in
  Fmt.pf ppf "Kernel: %s  (%d launch%s%a)@." k.kernel k.launches
    (if k.launches = 1 then "" else "es")
    Fmt.(option (any ", alternative " ++ int))
    k.alternative;
  line "Launch" "grid %a  block %a  (%d blocks x %d threads)" pp_dims k.grid_dims pp_dims
    k.block_dims k.nblocks k.threads_per_block;
  line "Duration" "%.6f s  (%.1f%% of composite)" k.seconds
    (if composite > 0. then 100. *. k.seconds /. composite else 0.);
  line "Registers/Thread" "%d  (%d spilled)" k.regs_per_thread k.spilled;
  line "Static SMem/Block" "%d B" k.static_shmem;
  line "ILP / MLP" "%.2f / %.2f" k.ilp k.mlp;
  line "Achieved Occupancy" "%.1f%%  (limiter: %s, %d blocks/SM)" (100. *. k.occupancy)
    k.occupancy_limiter k.blocks_per_sm;
  line "Grid Utilization" "%.1f%%" (100. *. k.utilization);
  line "Limiting Resource" "%s" k.bound;
  line "Bottleneck" "%a" Bottleneck.pp k.bottleneck;
  (* the Table II counter set *)
  line "LSU Utilization" "%.0f%%" (100. *. k.lsu_utilization);
  line "FMA Utilization" "%.0f%%" (100. *. k.fma_utilization);
  line "L2->L1 Read" "%.1f MB" (Counters.l2_to_l1_read_bytes k.counters /. 1e6);
  line "L1->L2 Write" "%.1f MB" (Counters.l1_to_l2_write_bytes k.counters /. 1e6);
  line "L1->SM Read Req." "%.2f M" (k.counters.Counters.global_load_req /. 1e6);
  line "SM->L1 Write Req." "%.2f M" (k.counters.Counters.global_store_req /. 1e6);
  line "ShMem->SM Read Req." "%.2f M" (k.counters.Counters.shared_load_req /. 1e6);
  line "SM->ShMem Write Req." "%.2f M" (k.counters.Counters.shared_store_req /. 1e6);
  line "DRAM Read / Write" "%.1f / %.1f MB"
    (Counters.dram_read_bytes k.counters /. 1e6)
    (Counters.dram_write_bytes k.counters /. 1e6);
  line "Warp Instructions" "%.2f M" (k.counters.Counters.warp_insts /. 1e6);
  line "Barriers" "%.0f" k.counters.Counters.barriers;
  line "Divergent Branches" "%.0f" k.counters.Counters.divergent_branches

let pp_report ppf (r : report) =
  Fmt.pf ppf "== Profile: %d kernel%s, composite %.6f s ==@.@." (List.length r.kernels)
    (if List.length r.kernels = 1 then "" else "s")
    r.composite_seconds;
  List.iteri
    (fun i k ->
      if i > 0 then Fmt.pf ppf "@.";
      pp_kernel ~composite:r.composite_seconds ppf k)
    r.kernels

(* ------------------------------------------------------------------ *)
(* JSON report                                                         *)
(* ------------------------------------------------------------------ *)

let json_of_kernel (k : kernel_profile) : Json.t =
  Json.Obj
    [
      ("kernel", Json.Str k.kernel);
      ("launches", Json.Int k.launches);
      ("seconds", Json.Float k.seconds);
      ("alternative", match k.alternative with Some a -> Json.Int a | None -> Json.Null);
      ("grid_dims", Json.List (List.map Json.int k.grid_dims));
      ("block_dims", Json.List (List.map Json.int k.block_dims));
      ("nblocks", Json.Int k.nblocks);
      ("threads_per_block", Json.Int k.threads_per_block);
      ("regs_per_thread", Json.Int k.regs_per_thread);
      ("spilled", Json.Int k.spilled);
      ("static_shmem", Json.Int k.static_shmem);
      ("ilp", Json.Float k.ilp);
      ("mlp", Json.Float k.mlp);
      ("occupancy", Json.Float k.occupancy);
      ("occupancy_limiter", Json.Str k.occupancy_limiter);
      ("blocks_per_sm", Json.Int k.blocks_per_sm);
      ("utilization", Json.Float k.utilization);
      ("lsu_utilization", Json.Float k.lsu_utilization);
      ("fma_utilization", Json.Float k.fma_utilization);
      ("bound", Json.Str k.bound);
      ("bottleneck", Json.Str (Bottleneck.label_name k.bottleneck.Bottleneck.label));
      ("bottleneck_limiter", Json.Str k.bottleneck.Bottleneck.limiter);
      ("bottleneck_headroom", Json.Float k.bottleneck.Bottleneck.headroom);
      ("cycles", Json.Float k.cycles);
      ("l2_l1_read_bytes", Json.Float (Counters.l2_to_l1_read_bytes k.counters));
      ("l1_l2_write_bytes", Json.Float (Counters.l1_to_l2_write_bytes k.counters));
      ("dram_read_bytes", Json.Float (Counters.dram_read_bytes k.counters));
      ("dram_write_bytes", Json.Float (Counters.dram_write_bytes k.counters));
      ("global_load_req", Json.Float k.counters.Counters.global_load_req);
      ("global_store_req", Json.Float k.counters.Counters.global_store_req);
      ("shared_load_req", Json.Float k.counters.Counters.shared_load_req);
      ("shared_store_req", Json.Float k.counters.Counters.shared_store_req);
      ("shared_transactions", Json.Float k.counters.Counters.shared_transactions);
      ("warp_insts", Json.Float k.counters.Counters.warp_insts);
      ("barriers", Json.Float k.counters.Counters.barriers);
      ("divergent_branches", Json.Float k.counters.Counters.divergent_branches);
      ("blocks", Json.Float k.counters.Counters.blocks);
    ]

let json_of_report (r : report) : Json.t =
  Json.Obj
    [
      ("composite_seconds", Json.Float r.composite_seconds);
      ("kernels", Json.List (List.map json_of_kernel r.kernels));
    ]
