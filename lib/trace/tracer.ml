(** Deterministic span-based tracer.

    Collects nested spans, instant events and counter samples from the
    compiler and the simulated runtime. There is no wall clock
    anywhere: every event is stamped by a caller-supplied *tick
    source* — pass sequence numbers on the compiler side, simulated
    seconds on the runtime side — so traces are bit-identical across
    runs and machines.

    A disabled tracer ([disabled], or [create ~enabled:false ()]) is a
    no-op sink: every operation returns immediately after one mutable
    field check, so instrumentation can stay threaded through the hot
    paths unconditionally. *)

type event =
  | Span of {
      name : string;
      cat : string;
      ts : float;  (** start tick *)
      dur : float;  (** duration in ticks *)
      args : (string * Json.t) list;
    }
  | Instant of { name : string; cat : string; ts : float; args : (string * Json.t) list }
  | Counter of { name : string; ts : float; value : float }

type open_span = { o_name : string; o_cat : string; o_ts : float; o_args : (string * Json.t) list }

type t = {
  enabled : bool;
  mutable clock : unit -> float;
  mutable events : event list;  (** reverse emission order *)
  mutable stack : open_span list;
}

(** A clock that returns 0, 1, 2, ... — the deterministic default used
    for compiler-side traces (one tick per clock query). *)
let seq_clock () =
  let n = ref (-1.) in
  fun () ->
    n := !n +. 1.;
    !n

let disabled = { enabled = false; clock = (fun () -> 0.); events = []; stack = [] }

let create ?clock () =
  let clock = match clock with Some c -> c | None -> seq_clock () in
  { enabled = true; clock; events = []; stack = [] }

let enabled t = t.enabled
let set_clock t clock = if t.enabled then t.clock <- clock
let now t = if t.enabled then t.clock () else 0.

let emit t e = t.events <- e :: t.events

let begin_span t ?(cat = "") ?(args = []) name =
  if t.enabled then
    t.stack <- { o_name = name; o_cat = cat; o_ts = t.clock (); o_args = args } :: t.stack

(** End the innermost open span, merging [args] into its begin-time
    arguments. A stray end with no open span is ignored. *)
let end_span t ?(args = []) () =
  if t.enabled then
    match t.stack with
    | [] -> ()
    | s :: rest ->
        t.stack <- rest;
        let ts_end = t.clock () in
        emit t
          (Span
             {
               name = s.o_name;
               cat = s.o_cat;
               ts = s.o_ts;
               dur = Float.max 0. (ts_end -. s.o_ts);
               args = s.o_args @ args;
             })

let with_span t ?cat ?args name f =
  if not t.enabled then f ()
  else begin
    begin_span t ?cat ?args name;
    match f () with
    | v ->
        end_span t ();
        v
    | exception e ->
        end_span t ~args:[ ("exception", Json.Str (Printexc.to_string e)) ] ();
        raise e
  end

(** A complete span with explicit timestamp and duration — used by the
    runtime, whose clock is the simulated time rather than a tick
    sequence. *)
let span_at t ?(cat = "") ?(args = []) ~ts ~dur name =
  if t.enabled then emit t (Span { name; cat; ts; dur = Float.max 0. dur; args })

let instant t ?(cat = "") ?(args = []) name =
  if t.enabled then emit t (Instant { name; cat; ts = t.clock (); args })

let instant_at t ?(cat = "") ?(args = []) ~ts name =
  if t.enabled then emit t (Instant { name; cat; ts; args })

let counter t ?ts name value =
  if t.enabled then
    let ts = match ts with Some ts -> ts | None -> t.clock () in
    emit t (Counter { name; ts; value })

(** Close every still-open span (innermost first). *)
let close_all t = if t.enabled then while t.stack <> [] do end_span t () done

let depth t = List.length t.stack

(** Events in emission order (spans appear at their end time). *)
let events t = List.rev t.events

let clear t =
  if t.enabled then begin
    t.events <- [];
    t.stack <- []
  end

let event_name = function
  | Span { name; _ } | Instant { name; _ } | Counter { name; _ } -> name

let event_ts = function Span { ts; _ } | Instant { ts; _ } | Counter { ts; _ } -> ts

let pp_event ppf = function
  | Span { name; cat; ts; dur; args } ->
      Fmt.pf ppf "span %s [%s] ts=%g dur=%g%a" name cat ts dur
        Fmt.(list ~sep:nop (any " " ++ pair ~sep:(any "=") string Json.pp))
        args
  | Instant { name; cat; ts; args } ->
      Fmt.pf ppf "instant %s [%s] ts=%g%a" name cat ts
        Fmt.(list ~sep:nop (any " " ++ pair ~sep:(any "=") string Json.pp))
        args
  | Counter { name; ts; value } -> Fmt.pf ppf "counter %s ts=%g value=%g" name ts value
