(** Chrome trace-event exporter.

    Renders a tracer's events as the Trace Event Format consumed by
    Perfetto / [chrome://tracing]: spans become complete ("X") events,
    instants "i", counters "C". Event categories are mapped to
    threads of one process so the compiler pipeline and the simulated
    runtime appear as separate named tracks, with thread-name metadata
    events emitted up front. Timestamps are microseconds. *)

let process_name = "pgpu"

(** Stable category -> tid mapping, in order of first appearance;
    uncategorized events share tid 0. *)
let tid_table (events : Tracer.event list) : (string * int) list =
  let next = ref 0 in
  List.fold_left
    (fun acc e ->
      let cat = match e with Tracer.Span { cat; _ } | Tracer.Instant { cat; _ } -> cat | Tracer.Counter _ -> "" in
      if List.mem_assoc cat acc then acc
      else begin
        let tid = !next in
        incr next;
        (cat, tid) :: acc
      end)
    [] events
  |> List.rev

let json_of_events (events : Tracer.event list) : Json.t =
  let tids = tid_table events in
  let tid cat = match List.assoc_opt cat tids with Some t -> t | None -> 0 in
  let base name cat ph ts =
    [
      ("name", Json.Str name);
      ("cat", Json.Str (if cat = "" then "pgpu" else cat));
      ("ph", Json.Str ph);
      ("ts", Json.Float ts);
      ("pid", Json.Int 1);
      ("tid", Json.Int (tid cat));
    ]
  in
  let args_field args = if args = [] then [] else [ ("args", Json.Obj args) ] in
  let event_json (e : Tracer.event) : Json.t =
    match e with
    | Tracer.Span { name; cat; ts; dur; args } ->
        Json.Obj (base name cat "X" ts @ [ ("dur", Json.Float dur) ] @ args_field args)
    | Tracer.Instant { name; cat; ts; args } ->
        Json.Obj (base name cat "i" ts @ [ ("s", Json.Str "t") ] @ args_field args)
    | Tracer.Counter { name; ts; value } ->
        Json.Obj (base name "" "C" ts @ [ ("args", Json.Obj [ (name, Json.Float value) ]) ])
  in
  let metadata =
    Json.Obj
      [
        ("name", Json.Str "process_name");
        ("ph", Json.Str "M");
        ("pid", Json.Int 1);
        ("args", Json.Obj [ ("name", Json.Str process_name) ]);
      ]
    :: List.map
         (fun (cat, tid) ->
           Json.Obj
             [
               ("name", Json.Str "thread_name");
               ("ph", Json.Str "M");
               ("pid", Json.Int 1);
               ("tid", Json.Int tid);
               ("args", Json.Obj [ ("name", Json.Str (if cat = "" then "events" else cat)) ]);
             ])
         tids
  in
  Json.Obj
    [
      ("traceEvents", Json.List (metadata @ List.map event_json events));
      ("displayTimeUnit", Json.Str "ms");
    ]

let to_string tracer = Json.to_string (json_of_events (Tracer.events tracer))

let write_file path tracer =
  Tracer.close_all tracer;
  Json.to_file path (json_of_events (Tracer.events tracer))
