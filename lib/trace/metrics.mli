(** Flat metrics exporter: reduces a trace to one flat JSON object —
    the final value of each counter plus per-span-name totals and
    counts — for diffing and dashboards. *)

val of_events : Tracer.event list -> Json.t
val of_tracer : Tracer.t -> Json.t

(** Close open spans and write the metrics object to a file. *)
val write_file : string -> Tracer.t -> unit
