(** Virtual ISA: the backend's linear register IR.

    Device regions are lowered to a flat instruction stream over
    virtual registers — the stand-in for PTX/GCN that the register
    allocator and the kernel statistics operate on. Structured control
    flow is linearized in place; loop extents are recorded as index
    spans so liveness can be extended across back edges. Instructions
    carry a functional-unit [kind], giving the instruction mix that
    the timing model's issue statistics build on. *)

open Pgpu_ir

type rw = Read | Write

type kind =
  | Fp32
  | Fp64
  | Int  (** integer ALU, predicates, immediate moves *)
  | Sfu  (** special-function unit: sqrt, exp, log, sin, cos, rsqrt, pow *)
  | Mem_global of rw
  | Mem_shared of rw
  | Sync
  | Other  (** control flow, phis, host-side ops *)

type vinstr = {
  kind : kind;
  defs : int list;  (** virtual registers written *)
  srcs : int list;  (** virtual registers read *)
}

(** A loop's [start, stop] instruction-index span (inclusive): [start]
    is the header, [stop] the latch. *)
type loop = { start : int; stop : int }

type program = {
  code : vinstr array;
  loops : loop list;
  nvregs : int;
  use_counts : int array;  (** reads per virtual register *)
}

type mix = {
  n_fp : int;
  n_int : int;
  n_sfu : int;
  n_mem_global : int;
  n_mem_shared : int;
  n_sync : int;
  n_total : int;
}

let kind_of_ty = function
  | Types.F64 -> Fp64
  | Types.F32 -> Fp32
  | Types.I1 | Types.I32 | Types.I64 -> Int
  | Types.Memref _ -> Int (* address arithmetic *)

let mem_kind rw (mem : Value.t) =
  match Types.space_of mem.Value.ty with
  | Types.Shared -> Mem_shared rw
  | Types.Global | Types.Host -> Mem_global rw

let kind_of_expr (v : Value.t) = function
  | Instr.Const _ -> Int
  | Instr.Binop (Ops.Pow, _, _) -> Sfu
  | Instr.Unop ((Ops.Sqrt | Ops.Exp | Ops.Log | Ops.Sin | Ops.Cos | Ops.Rsqrt), _) -> Sfu
  | Instr.Binop _ | Instr.Unop _ | Instr.Select _ | Instr.Cast _ -> kind_of_ty v.Value.ty
  | Instr.Cmp _ -> Int
  | Instr.Load { mem; _ } -> mem_kind Read mem

let lower (block : Instr.block) : program =
  let code = ref [] and n = ref 0 in
  let loops = ref [] in
  let vreg : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let nv = ref 0 in
  (* only scalar SSA values live in registers; memrefs are buffers *)
  let def_of (v : Value.t) =
    if Types.is_memref v.Value.ty then None
    else begin
      let r = !nv in
      incr nv;
      Hashtbl.replace vreg v.Value.id r;
      Some r
    end
  in
  let src_of (v : Value.t) = Hashtbl.find_opt vreg v.Value.id in
  let emit kind defs srcs =
    let srcs = List.filter_map src_of srcs in
    let defs = List.filter_map def_of defs in
    code := { kind; defs; srcs } :: !code;
    incr n;
    !n - 1
  in
  let rec go_block b = List.iter go_instr b
  and go_instr (i : Instr.instr) =
    match i with
    | Instr.Let (v, e) -> ignore (emit (kind_of_expr v e) [ v ] (Instr.direct_uses i))
    | Instr.Store { mem; idx; v } -> ignore (emit (mem_kind Write mem) [] [ idx; v ])
    | Instr.If { cond; results; then_; else_ } ->
        ignore (emit Int [] [ cond ]);
        go_block then_;
        go_block else_;
        ignore (emit Other results [])
    | Instr.For { iv; lb; ub; step; iter_args; inits; results; body; _ } ->
        let start = emit Int (iv :: iter_args) (lb :: ub :: step :: inits) in
        go_block body;
        let stop = emit Other results [] in
        loops := { start; stop } :: !loops
    | Instr.While { iter_args; inits; results; body; _ } ->
        let start = emit Other iter_args inits in
        go_block body;
        let stop = emit Other results [] in
        loops := { start; stop } :: !loops
    | Instr.Parallel { ivs; ubs; body; _ } ->
        ignore (emit Other ivs ubs);
        go_block body
    | Instr.Barrier _ -> ignore (emit Sync [] [])
    | Instr.Alloc_shared { res; _ } -> ignore (emit Other [ res ] [])
    | Instr.Alloc { res; count; _ } -> ignore (emit Other [ res ] [ count ])
    | Instr.Free v -> ignore (emit Other [] [ v ])
    | Instr.Memcpy { dst; src; count } -> ignore (emit Other [] [ dst; src; count ])
    | Instr.Gpu_wrapper { body; _ } -> go_block body
    | Instr.Alternatives { regions; _ } -> List.iter go_block regions
    | Instr.Intrinsic { results; args; _ } -> ignore (emit Other results args)
    | Instr.Yield vs -> ignore (emit Other [] vs)
    | Instr.Yield_while (c, vs) -> ignore (emit Other [] (c :: vs))
    | Instr.Return vs -> ignore (emit Other [] vs)
  in
  go_block block;
  let code = Array.of_list (List.rev !code) in
  let use_counts = Array.make (max 1 !nv) 0 in
  Array.iter (fun vi -> List.iter (fun r -> use_counts.(r) <- use_counts.(r) + 1) vi.srcs) code;
  { code; loops = List.rev !loops; nvregs = !nv; use_counts }

let instruction_mix (p : program) : mix =
  let m =
    ref { n_fp = 0; n_int = 0; n_sfu = 0; n_mem_global = 0; n_mem_shared = 0; n_sync = 0; n_total = 0 }
  in
  Array.iter
    (fun vi ->
      let c = !m in
      m :=
        (match vi.kind with
        | Fp32 | Fp64 -> { c with n_fp = c.n_fp + 1 }
        | Int -> { c with n_int = c.n_int + 1 }
        | Sfu -> { c with n_sfu = c.n_sfu + 1 }
        | Mem_global _ -> { c with n_mem_global = c.n_mem_global + 1 }
        | Mem_shared _ -> { c with n_mem_shared = c.n_mem_shared + 1 }
        | Sync -> { c with n_sync = c.n_sync + 1 }
        | Other -> c);
      m := { !m with n_total = !m.n_total + 1 })
    p.code;
  !m
