(** Linear-scan register allocation over the virtual ISA.

    Live intervals are [first def, last use] spans over the linear
    instruction stream, extended across loops: a register that is live
    on entry to a loop (defined at or before the header, still used
    inside) must survive the whole loop, since every iteration reads
    it — the property the paper's coarsening legality depends on.
    When pressure exceeds the target's per-thread budget, the interval
    with the furthest end is spilled (Poletto-Sarkar), and the cost is
    reported as the ptxas-style spill statistics that alternative
    pruning consumes. *)

type result = {
  regs_used : int;  (** peak simultaneously-live registers, <= budget *)
  spilled : int;  (** live intervals moved to local memory *)
  spill_instructions : int;  (** estimated spill stores + reload loads *)
}

type interval = { reg : int; start : int; mutable stop : int }

let intervals_of (p : Visa.program) : interval list =
  let def_at = Array.make (max 1 p.Visa.nvregs) max_int in
  let end_at = Array.make (max 1 p.Visa.nvregs) (-1) in
  Array.iteri
    (fun idx (vi : Visa.vinstr) ->
      List.iter
        (fun r ->
          if def_at.(r) = max_int then def_at.(r) <- idx;
          end_at.(r) <- max end_at.(r) idx)
        vi.Visa.defs;
      List.iter
        (fun r ->
          if def_at.(r) = max_int then def_at.(r) <- idx;
          end_at.(r) <- max end_at.(r) idx)
        vi.Visa.srcs)
    p.Visa.code;
  (* loop extension: innermost spans first, then widen outwards so an
     outer loop sees the already-extended inner ends *)
  let loops =
    List.sort
      (fun (a : Visa.loop) b -> compare (a.Visa.stop - a.Visa.start) (b.Visa.stop - b.Visa.start))
      p.Visa.loops
  in
  List.iter
    (fun (l : Visa.loop) ->
      Array.iteri
        (fun r d ->
          if d < max_int && d <= l.Visa.start && end_at.(r) > l.Visa.start then
            end_at.(r) <- max end_at.(r) l.Visa.stop)
        def_at)
    loops;
  let acc = ref [] in
  Array.iteri
    (fun r d -> if d < max_int then acc := { reg = r; start = d; stop = end_at.(r) } :: !acc)
    def_at;
  List.sort (fun a b -> compare (a.start, a.reg) (b.start, b.reg)) !acc

let allocate ~budget (p : Visa.program) : result =
  if budget < 1 then invalid_arg "Regalloc.allocate: budget must be positive";
  let spilled = ref 0 and spill_instructions = ref 0 in
  let regs_used = ref 0 in
  (* active intervals, kept sorted by increasing stop *)
  let active = ref [] in
  let insert iv = active := List.sort (fun a b -> compare a.stop b.stop) (iv :: !active) in
  let spill iv =
    incr spilled;
    (* one store at the definition plus a reload per use *)
    spill_instructions := !spill_instructions + 1 + p.Visa.use_counts.(iv.reg)
  in
  List.iter
    (fun iv ->
      active := List.filter (fun a -> a.stop >= iv.start) !active;
      if List.length !active >= budget then begin
        (* evict the interval that ends furthest away *)
        let furthest = List.fold_left (fun m a -> if a.stop > m.stop then a else m) iv !active in
        spill furthest;
        if furthest.reg <> iv.reg then begin
          active := List.filter (fun a -> a.reg <> furthest.reg) !active;
          insert iv
        end
      end
      else begin
        insert iv;
        regs_used := max !regs_used (List.length !active)
      end)
    (intervals_of p);
  { regs_used = !regs_used; spilled = !spilled; spill_instructions = !spill_instructions }
