(** CUDA-style occupancy calculator.

    Given a kernel's per-block resource demand, computes how many
    blocks one SM can host concurrently and which resource is the
    binding constraint. Occupancy is [active_warps / warp slots].
    Demands that can never execute (block too large, register budget
    exceeded, static shared memory above the per-block limit) are
    rejected — the static pruning of the multi-versioning pipeline
    (Section VI). *)

type demand = { threads_per_block : int; regs_per_thread : int; shmem_per_block : int }

type result = {
  blocks_per_sm : int;
  active_warps : int;  (** warps resident per SM at this occupancy *)
  occupancy : float;  (** active warps / warp slots, in (0, 1] *)
  limiter : string;  (** "threads" | "registers" | "shmem" | "blocks" *)
}

type rejection = Too_many_threads | Too_many_regs | Too_much_shmem

val pp_rejection : rejection Fmt.t

(** Feasibility alone, without the block-packing computation. *)
val check : Descriptor.t -> demand -> (unit, rejection) Stdlib.result

val compute : Descriptor.t -> demand -> (result, rejection) Stdlib.result

(** @raise Invalid_argument on an infeasible demand. *)
val compute_exn : Descriptor.t -> demand -> result
