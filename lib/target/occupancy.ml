(** CUDA-style occupancy calculator.

    Given a kernel's per-block resource demand, computes how many
    blocks one SM can host concurrently and which resource is the
    binding constraint. Blocks per SM is the minimum of four limits:

    - warp slots:  [max_warps_per_sm / warps_per_block],
      where [warps_per_block = ceil(threads / warp_size)] — a partial
      warp still occupies a full slot;
    - registers:   [regs_per_sm / (regs_per_thread * threads_per_block)];
    - shared mem:  [shmem_per_sm / shmem_per_block];
    - the hardware block-slot limit [max_blocks_per_sm].

    Occupancy is [active_warps / max_warps_per_sm]. Demands that can
    never execute (block too large, register budget exceeded, static
    shared memory above the per-block limit) are rejected — the static
    pruning of the multi-versioning pipeline (Section VI). *)

type demand = { threads_per_block : int; regs_per_thread : int; shmem_per_block : int }

type result = {
  blocks_per_sm : int;
  active_warps : int;  (** warps resident per SM at this occupancy *)
  occupancy : float;  (** active warps / warp slots, in (0, 1] *)
  limiter : string;  (** "threads" | "registers" | "shmem" | "blocks" *)
}

type rejection = Too_many_threads | Too_many_regs | Too_much_shmem

let pp_rejection ppf = function
  | Too_many_threads -> Fmt.string ppf "block size exceeds the target's thread limit"
  | Too_many_regs -> Fmt.string ppf "register demand exceeds the per-thread budget"
  | Too_much_shmem -> Fmt.string ppf "static shared memory exceeds the per-block limit"

(** Feasibility alone, without the block-packing computation. *)
let check (t : Descriptor.t) (d : demand) : (unit, rejection) Stdlib.result =
  if d.threads_per_block > t.Descriptor.max_threads_per_block then Error Too_many_threads
  else if d.regs_per_thread > t.Descriptor.max_regs_per_thread then Error Too_many_regs
  else if d.shmem_per_block > t.Descriptor.max_shmem_per_block then Error Too_much_shmem
  else Ok ()

let compute (t : Descriptor.t) (d : demand) : (result, rejection) Stdlib.result =
  match check t d with
  | Error e -> Error e
  | Ok () ->
      let threads = max 1 d.threads_per_block in
      let warps_per_block = Pgpu_support.Util.ceil_div threads t.Descriptor.warp_size in
      let max_warps = t.Descriptor.max_threads_per_sm / t.Descriptor.warp_size in
      let by_threads = max_warps / warps_per_block in
      let by_regs =
        if d.regs_per_thread <= 0 then max_int
        else t.Descriptor.regs_per_sm / (d.regs_per_thread * threads)
      in
      let by_shmem =
        if d.shmem_per_block <= 0 then max_int
        else t.Descriptor.shmem_per_sm / d.shmem_per_block
      in
      if by_regs = 0 then Error Too_many_regs
      else
        let limits =
          [
            ("threads", by_threads);
            ("registers", by_regs);
            ("shmem", by_shmem);
            ("blocks", t.Descriptor.max_blocks_per_sm);
          ]
        in
        let limiter, blocks =
          List.fold_left (fun (ln, lb) (n, b) -> if b < lb then (n, b) else (ln, lb))
            (List.hd limits) (List.tl limits)
        in
        let active_warps = blocks * warps_per_block in
        Ok
          {
            blocks_per_sm = blocks;
            active_warps;
            occupancy = float_of_int active_warps /. float_of_int max_warps;
            limiter;
          }

let compute_exn t d =
  match compute t d with
  | Ok r -> r
  | Error e -> invalid_arg (Fmt.str "Occupancy.compute_exn: %a" pp_rejection e)
