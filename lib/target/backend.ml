(** Backend kernel statistics: the ptxas-feedback stand-in.

    The paper's multi-versioning consults the real backend for the
    statistics that decide whether a coarsened replica is worth
    keeping — register usage and spilling. [analyze] reproduces them
    by lowering the kernel's per-thread region to the virtual ISA and
    running register allocation against the target's budget, and adds
    the static shared-memory demand (which block coarsening
    multiplies) plus ILP/MLP estimates that feed the latency term of
    the timing model. *)

open Pgpu_ir

type kernel_stats = {
  regs_per_thread : int;
  spilled : int;  (** registers spilled to local memory *)
  spill_instructions : int;
  static_shmem : int;  (** bytes of static shared memory per block *)
  ilp : float;  (** independent instructions per dependency step *)
  mlp : float;  (** independent loads per dependent-load step *)
  n_instructions : int;  (** virtual-ISA instructions in the thread body *)
}

let pp_stats ppf s =
  Fmt.pf ppf "regs=%d spills=%d shmem=%dB ilp=%.1f mlp=%.1f" s.regs_per_thread s.spilled
    s.static_shmem s.ilp s.mlp

(** The body of the first thread-level parallel loop in the region —
    the per-thread code that the register allocator models. *)
let find_threads_body (region : Instr.block) : Instr.block option =
  let r = ref None in
  Instr.iter_deep
    (fun i ->
      match i with
      | Instr.Parallel { level = Instr.Threads; body; _ } ->
          if Option.is_none !r then r := Some body
      | _ -> ())
    region;
  !r

(** Threads actually execute more than one outstanding instruction and
    load; the hardware bounds how many (scoreboard slots, outstanding
    load queue). *)
let max_ilp = 8.
let max_mlp = 8.

(** ILP and MLP estimates of the per-thread code: instructions (resp.
    loads) divided by the depth of the longest dependency (resp.
    load-to-address) chain in the linearized body. *)
let parallelism (region : Instr.block) : float * float =
  let body = Option.value (find_threads_body region) ~default:region in
  let p = Visa.lower body in
  let nv = max 1 p.Visa.nvregs in
  let depth = Array.make nv 0. and ldepth = Array.make nv 0. in
  let ops = ref 0 and crit = ref 1. in
  let loads = ref 0 and lcrit = ref 1. in
  Array.iter
    (fun (vi : Visa.vinstr) ->
      let dsrc = List.fold_left (fun m r -> Float.max m depth.(r)) 0. vi.Visa.srcs in
      let lsrc = List.fold_left (fun m r -> Float.max m ldepth.(r)) 0. vi.Visa.srcs in
      let d, l =
        match vi.Visa.kind with
        | Visa.Fp32 | Visa.Fp64 | Visa.Int | Visa.Sfu ->
            incr ops;
            let d = dsrc +. 1. in
            crit := Float.max !crit d;
            (d, lsrc)
        | Visa.Mem_global Visa.Read | Visa.Mem_shared Visa.Read ->
            incr loads;
            let l = lsrc +. 1. in
            lcrit := Float.max !lcrit l;
            (dsrc +. 1., l)
        | _ -> (dsrc, lsrc)
      in
      List.iter
        (fun r ->
          depth.(r) <- d;
          ldepth.(r) <- l)
        vi.Visa.defs)
    p.Visa.code;
  let ilp = Float.min max_ilp (Float.max 1. (float_of_int !ops /. !crit)) in
  let mlp =
    if !loads = 0 then 1.
    else Float.min max_mlp (Float.max 1. (float_of_int !loads /. !lcrit))
  in
  (ilp, mlp)

(** Registers no kernel goes below: ABI-reserved state (thread ids,
    stack pointer). *)
let min_regs_per_thread = 4

let analyze (t : Descriptor.t) (region : Instr.block) : kernel_stats =
  let static_shmem = ref 0 in
  Instr.iter_deep
    (fun i ->
      match i with
      | Instr.Alloc_shared { elt; size; _ } ->
          static_shmem := !static_shmem + (size * Types.byte_size elt)
      | _ -> ())
    region;
  let body = Option.value (find_threads_body region) ~default:region in
  let p = Visa.lower body in
  let ra = Regalloc.allocate ~budget:t.Descriptor.max_regs_per_thread p in
  let ilp, mlp = parallelism region in
  {
    regs_per_thread = max min_regs_per_thread ra.Regalloc.regs_used;
    spilled = ra.Regalloc.spilled;
    spill_instructions = ra.Regalloc.spill_instructions;
    static_shmem = !static_shmem;
    ilp;
    mlp;
    n_instructions = Array.length p.Visa.code;
  }
