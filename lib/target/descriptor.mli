(** Target machine descriptors (the paper's Table I, plus the CPU
    targets of the barrier-fission backend).

    One record per machine: the parameters that the occupancy
    calculator, the virtual-ISA backend, the functional simulators and
    the timing models consume. Peak arithmetic throughput is *derived*
    from lane counts and clocks, so headline numbers are a consequence
    of the machine model rather than free constants. *)

type vendor = Nvidia | Amd | Generic

(** Whether the descriptor models a GPU (SPMD warps on SMs/CUs, the
    gpusim executor) or a CPU (barrier-fissioned loop nests executed
    sequentially per core by [lib/cpu]). For CPU descriptors the per-SM
    fields are reinterpreted per core and [warp_size] is 1. *)
type kind = Gpu | Cpu

type t = {
  name : string;  (** short lower-case name, e.g. ["a100"] *)
  arch : string;  (** compiler target triple component, e.g. ["sm_80"] *)
  vendor : vendor;
  kind : kind;
  sm_count : int;  (** streaming multiprocessors / compute units / CPU cores *)
  warp_size : int;  (** 32-wide warps (NVIDIA), 64-wide wavefronts (CDNA), 1 on CPUs *)
  clock_ghz : float;  (** sustained boost clock used for throughput *)
  issue_per_cycle : int;  (** warp instructions issued per SM per cycle *)
  simd_width : int;
      (** data-parallel lanes of one vector instruction: the warp width
          on GPUs, the vector-register width (f32 elements) on CPUs *)
  fp32_lanes_per_sm : int;
  fp64_lanes_per_sm : int;
  int_lanes_per_sm : int;
  sfu_lanes_per_sm : int;  (** special-function units: sqrt, exp, sin, ... *)
  lsu_lanes_per_sm : int;  (** load/store address lanes *)
  max_threads_per_block : int;
  max_threads_per_sm : int;
  max_blocks_per_sm : int;
  regs_per_sm : int;  (** 32-bit registers in the SM register file *)
  max_regs_per_thread : int;  (** backend register budget per thread *)
  shmem_per_sm : int;  (** shared memory (LDS) bytes per SM *)
  max_shmem_per_block : int;
      (** static shared-memory budget the compiler accepts per block;
          alternatives demanding more are pruned (Section VI) *)
  shmem_banks : int;
  l1_bytes_per_sm : int;
  l1_line_bytes : int;
  l2_bytes : int;
      (** device-wide on GPUs; total across per-core slices on CPUs *)
  l3_bytes : int;  (** shared last-level cache; 0 on the GPU targets *)
  l3_bandwidth_gbs : float;  (** aggregate L3 bandwidth; 0 on GPUs *)
  l1_latency : float;  (** load-to-use latencies, in cycles *)
  l2_latency : float;
  dram_latency : float;
  alu_latency : float;
  l2_bandwidth_gbs : float;
  mem_bandwidth_gbs : float;  (** DRAM/HBM bandwidth *)
  h2d_bandwidth_gbs : float;  (** host-device interconnect (PCIe) *)
  kernel_launch_overhead : float;  (** seconds per kernel launch *)
  block_dispatch_overhead : float;  (** seconds per dispatched block *)
}

(** Peak FP32 throughput in TFLOP/s: FMA counts as two operations. *)
val fp32_tflops : t -> float

val fp64_tflops : t -> float

val a4000 : t
val a100 : t
val rx6800 : t
val mi210 : t

(** Generic 16-core desktop-class x86-64 CPU (AVX2): the default
    [--target cpu] machine of the barrier-fission backend. *)
val cpu : t

(** AMD EPYC 7763 (Zen 3): a 64-core server part. *)
val epyc7763 : t

(** Every registered target, GPUs first. *)
val all : t list

val gpus : t list
val cpus : t list
val pp_vendor : vendor Fmt.t
val pp_kind : kind Fmt.t
val pp : t Fmt.t

(** Header and rows of the paper's Table I (GPU targets), rendered
    from the descriptors. *)
val table1_rows : unit -> string list * string list list
