(** Backend kernel statistics: the ptxas-feedback stand-in.

    The paper's multi-versioning consults the real backend for the
    statistics that decide whether a coarsened replica is worth
    keeping — register usage and spilling. [analyze] reproduces them
    by lowering the kernel's per-thread region to the virtual ISA and
    running register allocation against the target's budget, and adds
    the static shared-memory demand (which block coarsening
    multiplies) plus ILP/MLP estimates that feed the latency term of
    the timing model. *)

open Pgpu_ir

type kernel_stats = {
  regs_per_thread : int;
  spilled : int;  (** registers spilled to local memory *)
  spill_instructions : int;
  static_shmem : int;  (** bytes of static shared memory per block *)
  ilp : float;  (** independent instructions per dependency step *)
  mlp : float;  (** independent loads per dependent-load step *)
  n_instructions : int;  (** virtual-ISA instructions in the thread body *)
}

val pp_stats : kernel_stats Fmt.t

(** The body of the first thread-level parallel loop in the region —
    the per-thread code that the register allocator models. *)
val find_threads_body : Instr.block -> Instr.block option

(** ILP and MLP estimates of the per-thread code: instructions (resp.
    loads) divided by the depth of the longest dependency (resp.
    load-to-address) chain in the linearized body. *)
val parallelism : Instr.block -> float * float

val analyze : Descriptor.t -> Instr.block -> kernel_stats
