(** Target GPU descriptors (Table I).

    One record per GPU used in the paper's evaluation: the machine
    parameters that the occupancy calculator, the virtual-ISA backend,
    the functional simulator and the timing model consume. Peak
    arithmetic throughput is *derived* from lane counts and clocks
    ([fp32_tflops]/[fp64_tflops]), so the Table I headline numbers are
    a consequence of the machine model rather than free constants. *)

type vendor = Nvidia | Amd | Generic

(** Whether the descriptor models a GPU (SPMD warps on SMs/CUs, the
    gpusim executor) or a CPU (barrier-fissioned loop nests executed
    sequentially per core by [lib/cpu]). For CPU descriptors the per-SM
    fields are reinterpreted per core and [warp_size] is 1. *)
type kind = Gpu | Cpu

type t = {
  name : string;  (** short lower-case name, e.g. ["a100"] *)
  arch : string;  (** compiler target triple component, e.g. ["sm_80"] *)
  vendor : vendor;
  kind : kind;
  (* --- machine shape --- *)
  sm_count : int;  (** streaming multiprocessors / compute units / CPU cores *)
  warp_size : int;  (** 32-wide warps (NVIDIA), 64-wide wavefronts (CDNA), 1 on CPUs *)
  clock_ghz : float;  (** sustained boost clock used for throughput *)
  issue_per_cycle : int;  (** warp instructions issued per SM per cycle *)
  simd_width : int;
      (** data-parallel lanes of one vector instruction: the warp width
          on GPUs, the vector-register width (f32 elements) on CPUs *)
  (* --- execution lanes per SM, in results per cycle --- *)
  fp32_lanes_per_sm : int;
  fp64_lanes_per_sm : int;
  int_lanes_per_sm : int;
  sfu_lanes_per_sm : int;  (** special-function units: sqrt, exp, sin, ... *)
  lsu_lanes_per_sm : int;  (** load/store address lanes *)
  (* --- occupancy limits --- *)
  max_threads_per_block : int;
  max_threads_per_sm : int;
  max_blocks_per_sm : int;
  regs_per_sm : int;  (** 32-bit registers in the SM register file *)
  max_regs_per_thread : int;  (** backend register budget per thread *)
  shmem_per_sm : int;  (** shared memory (LDS) bytes per SM *)
  max_shmem_per_block : int;
      (** static shared-memory budget the compiler accepts per block;
          alternatives demanding more are pruned (Section VI). On the
          A100 this is the 52 KiB static window that makes lud's
          2 KiB-tile block coarsening legal up to factor 26 (Fig. 14). *)
  shmem_banks : int;
  (* --- memory system --- *)
  l1_bytes_per_sm : int;
  l1_line_bytes : int;
  l2_bytes : int;
      (** device-wide on GPUs; total across per-core slices on CPUs *)
  l3_bytes : int;  (** shared last-level cache; 0 on the GPU targets *)
  l3_bandwidth_gbs : float;  (** aggregate L3 bandwidth; 0 on GPUs *)
  l1_latency : float;  (** load-to-use latencies, in cycles *)
  l2_latency : float;
  dram_latency : float;
  alu_latency : float;
  l2_bandwidth_gbs : float;
  mem_bandwidth_gbs : float;  (** DRAM/HBM bandwidth *)
  h2d_bandwidth_gbs : float;  (** host-device interconnect (PCIe) *)
  (* --- launch costs --- *)
  kernel_launch_overhead : float;  (** seconds per kernel launch *)
  block_dispatch_overhead : float;  (** seconds per dispatched block *)
}

(** Peak FP32 throughput in TFLOP/s: FMA counts as two operations. *)
let fp32_tflops t =
  2. *. float_of_int (t.sm_count * t.fp32_lanes_per_sm) *. t.clock_ghz /. 1000.

let fp64_tflops t =
  2. *. float_of_int (t.sm_count * t.fp64_lanes_per_sm) *. t.clock_ghz /. 1000.

(** NVIDIA RTX A4000 (GA104): the workstation Ampere part — full FP32
    rate (128 lanes/SM) but 1/32-rate FP64. *)
let a4000 =
  {
    name = "a4000";
    arch = "sm_86";
    vendor = Nvidia;
    kind = Gpu;
    sm_count = 48;
    warp_size = 32;
    clock_ghz = 1.56;
    issue_per_cycle = 4;
    simd_width = 32;
    fp32_lanes_per_sm = 128;
    fp64_lanes_per_sm = 4;
    int_lanes_per_sm = 64;
    sfu_lanes_per_sm = 16;
    lsu_lanes_per_sm = 16;
    max_threads_per_block = 1024;
    max_threads_per_sm = 1536;
    max_blocks_per_sm = 16;
    regs_per_sm = 65536;
    max_regs_per_thread = 255;
    shmem_per_sm = 102400;
    max_shmem_per_block = 101376;
    shmem_banks = 32;
    l1_bytes_per_sm = 131072;
    l1_line_bytes = 128;
    l2_bytes = 4194304;
    l3_bytes = 0;
    l3_bandwidth_gbs = 0.;
    l1_latency = 28.;
    l2_latency = 190.;
    dram_latency = 380.;
    alu_latency = 4.;
    l2_bandwidth_gbs = 1200.;
    mem_bandwidth_gbs = 448.;
    h2d_bandwidth_gbs = 12.;
    kernel_launch_overhead = 4e-6;
    block_dispatch_overhead = 1.5e-9;
  }

(** NVIDIA A100 (GA100): the datacenter Ampere part — half-rate FP64
    (32 lanes/SM), 40 MiB L2, HBM2e. *)
let a100 =
  {
    name = "a100";
    arch = "sm_80";
    vendor = Nvidia;
    kind = Gpu;
    sm_count = 108;
    warp_size = 32;
    clock_ghz = 1.41;
    issue_per_cycle = 4;
    simd_width = 32;
    fp32_lanes_per_sm = 64;
    fp64_lanes_per_sm = 32;
    int_lanes_per_sm = 64;
    sfu_lanes_per_sm = 16;
    lsu_lanes_per_sm = 32;
    max_threads_per_block = 1024;
    max_threads_per_sm = 2048;
    max_blocks_per_sm = 32;
    regs_per_sm = 65536;
    max_regs_per_thread = 255;
    shmem_per_sm = 167936;
    max_shmem_per_block = 53248;
    shmem_banks = 32;
    l1_bytes_per_sm = 196608;
    l1_line_bytes = 128;
    l2_bytes = 41943040;
    l3_bytes = 0;
    l3_bandwidth_gbs = 0.;
    l1_latency = 28.;
    l2_latency = 200.;
    dram_latency = 400.;
    alu_latency = 4.;
    l2_bandwidth_gbs = 4000.;
    mem_bandwidth_gbs = 1555.;
    h2d_bandwidth_gbs = 24.;
    kernel_launch_overhead = 4e-6;
    block_dispatch_overhead = 1.5e-9;
  }

(** AMD Radeon RX 6800 (Navi 21, RDNA2): gaming part — wave32, high
    clocks, 1/16-rate FP64, 16 KiB vector L1 per CU. *)
let rx6800 =
  {
    name = "rx6800";
    arch = "gfx1030";
    vendor = Amd;
    kind = Gpu;
    sm_count = 60;
    warp_size = 32;
    clock_ghz = 2.105;
    issue_per_cycle = 4;
    simd_width = 32;
    fp32_lanes_per_sm = 64;
    fp64_lanes_per_sm = 4;
    int_lanes_per_sm = 64;
    sfu_lanes_per_sm = 16;
    lsu_lanes_per_sm = 32;
    max_threads_per_block = 1024;
    max_threads_per_sm = 2048;
    max_blocks_per_sm = 16;
    regs_per_sm = 65536;
    max_regs_per_thread = 256;
    shmem_per_sm = 65536;
    max_shmem_per_block = 65536;
    shmem_banks = 32;
    l1_bytes_per_sm = 16384;
    l1_line_bytes = 128;
    l2_bytes = 4194304;
    l3_bytes = 0;
    l3_bandwidth_gbs = 0.;
    l1_latency = 30.;
    l2_latency = 210.;
    dram_latency = 420.;
    alu_latency = 4.;
    l2_bandwidth_gbs = 1800.;
    mem_bandwidth_gbs = 512.;
    h2d_bandwidth_gbs = 12.;
    kernel_launch_overhead = 4e-6;
    block_dispatch_overhead = 1.5e-9;
  }

(** AMD Instinct MI210 (gfx90a, CDNA2): datacenter part — wave64 and
    full-rate vector FP64 (the Fig. 17 asymmetry). *)
let mi210 =
  {
    name = "mi210";
    arch = "gfx90a";
    vendor = Amd;
    kind = Gpu;
    sm_count = 104;
    warp_size = 64;
    clock_ghz = 1.7;
    issue_per_cycle = 4;
    simd_width = 64;
    fp32_lanes_per_sm = 64;
    fp64_lanes_per_sm = 64;
    int_lanes_per_sm = 64;
    sfu_lanes_per_sm = 16;
    lsu_lanes_per_sm = 32;
    max_threads_per_block = 1024;
    max_threads_per_sm = 2048;
    max_blocks_per_sm = 16;
    regs_per_sm = 65536;
    max_regs_per_thread = 256;
    shmem_per_sm = 65536;
    max_shmem_per_block = 65536;
    shmem_banks = 32;
    l1_bytes_per_sm = 16384;
    l1_line_bytes = 64;
    l2_bytes = 8388608;
    l3_bytes = 0;
    l3_bandwidth_gbs = 0.;
    l1_latency = 30.;
    l2_latency = 220.;
    dram_latency = 440.;
    alu_latency = 4.;
    l2_bandwidth_gbs = 3000.;
    mem_bandwidth_gbs = 1638.;
    h2d_bandwidth_gbs = 24.;
    kernel_launch_overhead = 4e-6;
    block_dispatch_overhead = 1.5e-9;
  }

(** Generic 16-core desktop-class x86-64 CPU (AVX2): the default
    [--target cpu] machine of the barrier-fission backend. Per-SM
    fields are per core: two 8-wide FMA pipes (16 f32 results/cycle),
    half-rate f64, four scalar ALUs, two load/store ports, 32 KiB L1D
    and a 512 KiB private L2 slice per core, one shared 32 MiB L3.
    Occupancy limits are permissive — a CPU "block" is just a loop
    iteration — but keep the same shape so alternatives pruning and
    the tuner work unchanged. *)
let cpu =
  {
    name = "cpu";
    arch = "x86_64";
    vendor = Generic;
    kind = Cpu;
    sm_count = 16;
    warp_size = 1;
    clock_ghz = 3.2;
    issue_per_cycle = 4;
    simd_width = 8;
    fp32_lanes_per_sm = 16;
    fp64_lanes_per_sm = 8;
    int_lanes_per_sm = 4;
    sfu_lanes_per_sm = 1;
    lsu_lanes_per_sm = 2;
    max_threads_per_block = 1024;
    max_threads_per_sm = 2048;
    max_blocks_per_sm = 32;
    regs_per_sm = 262144;
    max_regs_per_thread = 512;
    shmem_per_sm = 4194304;
    max_shmem_per_block = 2097152;
    shmem_banks = 32;
    l1_bytes_per_sm = 32768;
    l1_line_bytes = 64;
    l2_bytes = 8388608;
    l3_bytes = 33554432;
    l3_bandwidth_gbs = 400.;
    l1_latency = 4.;
    l2_latency = 14.;
    dram_latency = 300.;
    alu_latency = 4.;
    l2_bandwidth_gbs = 1600.;
    mem_bandwidth_gbs = 76.8;
    h2d_bandwidth_gbs = 76.8;
    kernel_launch_overhead = 5e-6;
    block_dispatch_overhead = 2e-8;
  }

(** AMD EPYC 7763 (Zen 3): a 64-core server part — same core
    micro-architecture assumptions as [cpu] but wider (8-channel DDR4)
    and with a much larger L3. *)
let epyc7763 =
  {
    cpu with
    name = "epyc7763";
    arch = "znver3";
    sm_count = 64;
    clock_ghz = 2.45;
    l2_bytes = 33554432;
    l3_bytes = 268435456;
    l3_bandwidth_gbs = 800.;
    mem_bandwidth_gbs = 204.8;
    h2d_bandwidth_gbs = 204.8;
  }

let all = [ a4000; a100; rx6800; mi210; cpu; epyc7763 ]
let gpus = List.filter (fun t -> t.kind = Gpu) all
let cpus = List.filter (fun t -> t.kind = Cpu) all

let pp_vendor ppf = function
  | Nvidia -> Fmt.string ppf "NVIDIA"
  | Amd -> Fmt.string ppf "AMD"
  | Generic -> Fmt.string ppf "Generic"

let pp_kind ppf = function
  | Gpu -> Fmt.string ppf "GPU"
  | Cpu -> Fmt.string ppf "CPU"

let pp ppf t =
  Fmt.pf ppf "%-8s %-8s %a  %3d %s, warp %2d, %.2f GHz, %5.2f/%5.2f TFLOP/s f32/f64, %4.0f GB/s"
    t.name t.arch pp_vendor t.vendor t.sm_count
    (match t.kind with
    | Cpu -> "cores"
    | Gpu -> ( match t.vendor with Amd -> "CUs" | Nvidia | Generic -> "SMs"))
    t.warp_size t.clock_ghz (fp32_tflops t) (fp64_tflops t) t.mem_bandwidth_gbs

(** Header and rows of the paper's Table I, rendered from the
    descriptors. *)
let table1_rows () =
  let header =
    [
      "GPU";
      "Vendor";
      "Arch";
      "SMs/CUs";
      "Warp";
      "Clock (GHz)";
      "FP32 (TFLOP/s)";
      "FP64 (TFLOP/s)";
      "Mem BW (GB/s)";
      "Regs/SM";
      "Shmem/SM (KiB)";
      "L2 (MiB)";
    ]
  in
  let row t =
    [
      t.name;
      Fmt.str "%a" pp_vendor t.vendor;
      t.arch;
      string_of_int t.sm_count;
      string_of_int t.warp_size;
      Fmt.str "%.2f" t.clock_ghz;
      Fmt.str "%.2f" (fp32_tflops t);
      Fmt.str "%.2f" (fp64_tflops t);
      Fmt.str "%.0f" t.mem_bandwidth_gbs;
      string_of_int t.regs_per_sm;
      Fmt.str "%d" (t.shmem_per_sm / 1024);
      Fmt.str "%.0f" (float_of_int t.l2_bytes /. 1048576.);
    ]
  in
  (header, List.map row gpus)
