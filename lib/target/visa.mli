(** Virtual ISA: the backend's linear register IR.

    Device regions are lowered to a flat instruction stream over
    virtual registers — the stand-in for PTX/GCN that the register
    allocator and the kernel statistics operate on. Structured control
    flow is linearized in place; loop extents are recorded as index
    spans so liveness can be extended across back edges. Instructions
    carry a functional-unit [kind], giving the instruction mix that
    the timing model's issue statistics build on. *)

open Pgpu_ir

type rw = Read | Write

type kind =
  | Fp32
  | Fp64
  | Int  (** integer ALU, predicates, immediate moves *)
  | Sfu  (** special-function unit: sqrt, exp, log, sin, cos, rsqrt, pow *)
  | Mem_global of rw
  | Mem_shared of rw
  | Sync
  | Other  (** control flow, phis, host-side ops *)

type vinstr = {
  kind : kind;
  defs : int list;  (** virtual registers written *)
  srcs : int list;  (** virtual registers read *)
}

(** A loop's [start, stop] instruction-index span (inclusive): [start]
    is the header, [stop] the latch. *)
type loop = { start : int; stop : int }

type program = {
  code : vinstr array;
  loops : loop list;
  nvregs : int;
  use_counts : int array;  (** reads per virtual register *)
}

type mix = {
  n_fp : int;
  n_int : int;
  n_sfu : int;
  n_mem_global : int;
  n_mem_shared : int;
  n_sync : int;
  n_total : int;
}

val kind_of_ty : Types.t -> kind
val mem_kind : rw -> Value.t -> kind
val kind_of_expr : Value.t -> Instr.expr -> kind
val lower : Instr.block -> program
val instruction_mix : program -> mix
