(** Linear-scan register allocation over the virtual ISA.

    Live intervals are [first def, last use] spans over the linear
    instruction stream, extended across loops. When pressure exceeds
    the target's per-thread budget, the interval with the furthest end
    is spilled (Poletto-Sarkar), and the cost is reported as the
    ptxas-style spill statistics that alternative pruning consumes. *)

type result = {
  regs_used : int;  (** peak simultaneously-live registers, <= budget *)
  spilled : int;  (** live intervals moved to local memory *)
  spill_instructions : int;  (** estimated spill stores + reload loads *)
}

val allocate : budget:int -> Visa.program -> result
